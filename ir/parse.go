package ir

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"unicode"
)

// Parse reads textual IR into a Module. It accepts two dialects:
//
//   - the form produced by Print (the repo's own round-trip dialect), and
//   - real clang `-S -emit-llvm` output (LLVM 14, typed pointers) for the
//     instruction subset the engine models. Module-level metadata
//     (source_filename, target lines, named metadata, attribute groups,
//     declares), instruction flags (nsw/nuw/exact, fast-math), parameter
//     and call-site attributes, alignment annotations, `; ...` comments,
//     and trailing `!dbg`/`!tbaa`/`!llvm.loop` metadata are tolerated and
//     skipped; implicit (unnamed) entry blocks and clang's numeric
//     value/label names are resolved with LLVM's numbering rule.
//
// name labels the module and every diagnostic: parse errors carry
// name:line:col positions from the tokenizer.
func Parse(name, src string) (*Module, error) {
	p := &parser{src: name, toks: lex(src), m: NewModule(name)}
	if err := p.parseModule(); err != nil {
		return nil, err
	}
	return p.m, nil
}

// fwdRef is a placeholder for a value referenced before its definition
// (e.g. a phi naming the loop-latch increment). Resolved after the function
// body is parsed.
type fwdRef struct {
	name string
	t    Type
	line int
	col  int
}

func (f *fwdRef) Type() Type    { return f.t }
func (f *fwdRef) Ident() string { return "%" + f.name }

type token struct {
	text string
	line int
	col  int
}

// lex splits src into tokens with line:col positions. String literals
// ("..." — LLVM escapes quotes as \22, so a literal never contains an
// escaped quote) are single tokens, which keeps `;` inside
// source_filename/datalayout strings and metadata string operands from
// being misread as a comment start. `!foo`/`!42` metadata references and
// `#0` attribute-group references also lex as single tokens.
func lex(src string) []token {
	var toks []token
	line := 1
	lineStart := 0
	i := 0
	emit := func(text string, start int) {
		toks = append(toks, token{text: text, line: line, col: start - lineStart + 1})
	}
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
			lineStart = i
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '"':
			j := i + 1
			for j < len(src) && src[j] != '"' && src[j] != '\n' {
				j++
			}
			if j < len(src) && src[j] == '"' {
				j++
			}
			emit(src[i:j], i)
			i = j
		case c == ';':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '!' || c == '#':
			j := i + 1
			for j < len(src) && isIdentChar(src[j]) {
				j++
			}
			emit(src[i:j], i)
			i = j
		case strings.ContainsRune("=,()[]{}*:", rune(c)):
			emit(string(c), i)
			i++
		case c == '%' || c == '@':
			j := i + 1
			for j < len(src) && isIdentChar(src[j]) {
				j++
			}
			emit(src[i:j], i)
			i = j
		default:
			j := i
			for j < len(src) && isIdentChar(src[j]) {
				j++
			}
			if j == i { // unknown byte: emit it so errors can name it
				emit(string(c), i)
				i++
				continue
			}
			emit(src[i:j], i)
			i = j
		}
	}
	return toks
}

func isIdentChar(c byte) bool {
	return c == '_' || c == '.' || c == '-' || c == '+' ||
		unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

type parser struct {
	src  string
	toks []token
	pos  int
	m    *Module

	// per-function state
	f      *Function
	vals   map[string]Value
	blocks map[string]*Block
}

// at returns the position to report for the token at index i.
func (p *parser) at(i int) (line, col int) {
	if i < len(p.toks) {
		return p.toks[i].line, p.toks[i].col
	}
	if len(p.toks) > 0 {
		last := p.toks[len(p.toks)-1]
		return last.line, last.col + len(last.text)
	}
	return 1, 1
}

func (p *parser) errf(format string, args ...any) error {
	line, col := p.at(p.pos)
	return fmt.Errorf("ir: parse %s:%d:%d: %s", p.src, line, col, fmt.Sprintf(format, args...))
}

// errAt reports an error at an explicit position (for diagnostics raised
// after the offending token was consumed).
func (p *parser) errAt(line, col int, format string, args ...any) error {
	return fmt.Errorf("ir: parse %s:%d:%d: %s", p.src, line, col, fmt.Sprintf(format, args...))
}

func (p *parser) peek() string {
	if p.pos < len(p.toks) {
		return p.toks[p.pos].text
	}
	return ""
}

// peekAt looks ahead n tokens without consuming.
func (p *parser) peekAt(n int) string {
	if p.pos+n < len(p.toks) {
		return p.toks[p.pos+n].text
	}
	return ""
}

func (p *parser) next() string {
	t := p.peek()
	p.pos++
	return t
}

func (p *parser) expect(tok string) error {
	if got := p.next(); got != tok {
		p.pos--
		return p.errf("expected %q, got %q", tok, got)
	}
	return nil
}

// skipLine discards the rest of the current token's line (used for
// module-level constructs the engine does not model: source_filename,
// target lines, metadata definitions, declares, global initializers).
func (p *parser) skipLine() {
	if p.pos >= len(p.toks) {
		return
	}
	line := p.toks[p.pos].line
	for p.pos < len(p.toks) && p.toks[p.pos].line == line {
		p.pos++
	}
}

// skipRestOfLine discards any tokens remaining on the line of the token
// just consumed (the tail of a global definition).
func (p *parser) skipRestOfLine() {
	if p.pos == 0 || p.pos > len(p.toks) {
		return
	}
	line := p.toks[p.pos-1].line
	for p.pos < len(p.toks) && p.toks[p.pos].line == line {
		p.pos++
	}
}

// skipBraced discards tokens up to and including a balanced {...} group
// (attribute groups, metadata tuples).
func (p *parser) skipBraced() error {
	for p.pos < len(p.toks) && p.peek() != "{" {
		p.next()
	}
	if p.pos >= len(p.toks) {
		return p.errf("unexpected EOF looking for '{'")
	}
	depth := 0
	for p.pos < len(p.toks) {
		switch p.next() {
		case "{":
			depth++
		case "}":
			depth--
			if depth == 0 {
				return nil
			}
		}
	}
	return p.errf("unexpected EOF in braced group")
}

// funcKeywords are define/global modifiers that carry no meaning for the
// model: linkage, visibility, address significance, and DLL storage.
var funcKeywords = map[string]bool{
	"dso_local": true, "dso_preemptable": true,
	"private": true, "internal": true, "external": true,
	"linkonce": true, "linkonce_odr": true, "weak": true, "weak_odr": true,
	"common": true, "appending": true, "extern_weak": true,
	"available_externally": true,
	"hidden":               true, "protected": true, "default": true,
	"local_unnamed_addr": true, "unnamed_addr": true,
}

// paramAttrs are parameter/return attributes clang emits on kernel
// signatures and call sites. Attributes with a parenthesized or numeric
// payload (align 8, dereferenceable(64)) are handled by skipParamAttrs.
var paramAttrs = map[string]bool{
	"nocapture": true, "noundef": true, "readonly": true, "readnone": true,
	"writeonly": true, "noalias": true, "nonnull": true, "returned": true,
	"zeroext": true, "signext": true, "inreg": true, "nofree": true,
	"nest": true, "immarg": true,
}

// fastMathFlags are instruction-level FP flags; all are semantically
// invisible to the engine's strict IEEE evaluation order.
var fastMathFlags = map[string]bool{
	"fast": true, "nnan": true, "ninf": true, "nsz": true,
	"arcp": true, "contract": true, "afn": true, "reassoc": true,
}

// skipParamAttrs consumes parameter attributes before an operand or
// parameter name: bare keywords, `align N`, and `attr(payload)` forms.
func (p *parser) skipParamAttrs() {
	for {
		tok := p.peek()
		switch {
		case paramAttrs[tok]:
			p.next()
		case tok == "align":
			p.next()
			p.next() // the alignment value
		case (tok == "dereferenceable" || tok == "dereferenceable_or_null" || tok == "byval" || tok == "sret" || tok == "byref") && p.peekAt(1) == "(":
			p.next() // attr
			depth := 0
			for p.pos < len(p.toks) {
				t := p.next()
				if t == "(" {
					depth++
				} else if t == ")" {
					depth--
					if depth == 0 {
						break
					}
				}
			}
		default:
			return
		}
	}
}

// skipInstrSuffix consumes trailing `, align N`, `, !kind !N` metadata and
// `, !kind !{...}` chains after an instruction's operands.
func (p *parser) skipInstrSuffix() {
	for p.peek() == "," {
		nxt := p.peekAt(1)
		switch {
		case strings.HasPrefix(nxt, "!"):
			p.next() // ,
			p.next() // !kind
			if strings.HasPrefix(p.peek(), "!") {
				p.next() // !N
				if p.peek() == "{" {
					_ = p.skipBraced()
				}
			}
		case nxt == "align":
			p.next() // ,
			p.next() // align
			p.next() // N
		default:
			return
		}
	}
	// A bare attribute-group reference (`) #4`) after call instructions.
	for strings.HasPrefix(p.peek(), "#") {
		p.next()
	}
}

func (p *parser) parseModule() error {
	for p.pos < len(p.toks) {
		switch tok := p.peek(); {
		case tok == "source_filename" || tok == "target":
			p.skipLine()
		case tok == "declare":
			p.skipLine()
		case tok == "attributes":
			if err := p.skipBraced(); err != nil {
				return err
			}
		case strings.HasPrefix(tok, "!"):
			// Named or numbered metadata definition: one line each.
			p.skipLine()
		case strings.HasPrefix(tok, "@"):
			if err := p.parseGlobal(); err != nil {
				return err
			}
		case tok == "define":
			if err := p.parseFunc(); err != nil {
				return err
			}
		default:
			return p.errf("unexpected top-level token %q", tok)
		}
	}
	return nil
}

func (p *parser) parseGlobal() error {
	name := strings.TrimPrefix(p.next(), "@")
	if err := p.expect("="); err != nil {
		return err
	}
	for funcKeywords[p.peek()] {
		p.next()
	}
	if kw := p.peek(); kw == "global" || kw == "constant" {
		p.next()
	} else {
		return p.errf("expected 'global' or 'constant', got %q", kw)
	}
	t, err := p.parseType()
	if err != nil {
		return err
	}
	p.m.AddGlobal(name, t)
	// Initializer (zeroinitializer, constant lists), alignment and section
	// annotations are not modeled: backing memory is zero-initialized and
	// laid out by the workload. They always share the global's line.
	p.skipRestOfLine()
	return nil
}

// parseType consumes a type from the token stream.
func (p *parser) parseType() (Type, error) {
	var base Type
	if p.peek() == "[" {
		p.next()
		n, err := strconv.Atoi(p.next())
		if err != nil {
			p.pos--
			return nil, p.errf("bad array length %q", p.peek())
		}
		if err := p.expect("x"); err != nil {
			return nil, err
		}
		elem, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if err := p.expect("]"); err != nil {
			return nil, err
		}
		base = Arr(n, elem)
	} else {
		t, err := ParseType(p.next())
		if err != nil {
			p.pos--
			return nil, p.errf("%v", err)
		}
		base = t
	}
	for p.peek() == "*" {
		p.next()
		base = Ptr(base)
	}
	return base, nil
}

// nextUnnamed returns the number LLVM's counter would assign to the first
// unnamed value after the parameter list: parameters take %0..%k-1 when
// unnamed, and an implicit entry block label takes the next slot.
func nextUnnamed(params []*Param) int {
	n := 0
	for _, prm := range params {
		if prm.PName == strconv.Itoa(n) {
			n++
		}
	}
	return n
}

func (p *parser) parseFunc() error {
	p.next() // define
	for funcKeywords[p.peek()] {
		p.next()
	}
	p.skipParamAttrs() // return-value attributes (noundef etc.)
	ret, err := p.parseType()
	if err != nil {
		return err
	}
	fname := p.next()
	if !strings.HasPrefix(fname, "@") {
		p.pos--
		return p.errf("expected @name, got %q", fname)
	}
	if err := p.expect("("); err != nil {
		return err
	}
	var params []*Param
	for p.peek() != ")" {
		if len(params) > 0 {
			if err := p.expect(","); err != nil {
				return err
			}
		}
		t, err := p.parseType()
		if err != nil {
			return err
		}
		p.skipParamAttrs()
		pn := p.peek()
		if !strings.HasPrefix(pn, "%") {
			return p.errf("expected %%param, got %q", pn)
		}
		p.next()
		params = append(params, P(strings.TrimPrefix(pn, "%"), t))
	}
	p.next() // )
	// Function attributes between the signature and the body: attribute
	// group refs (#0), unnamed_addr, metadata attachments (!dbg !7),
	// section/alignment strings.
	for p.peek() != "{" {
		if p.pos >= len(p.toks) {
			return p.errf("unexpected EOF before function body")
		}
		p.next()
	}
	p.next() // {

	p.f = p.m.NewFunction(strings.TrimPrefix(fname, "@"), ret, params...)
	p.vals = map[string]Value{}
	p.blocks = map[string]*Block{}
	for _, prm := range params {
		p.vals[prm.PName] = prm
	}
	for _, g := range p.m.Globals {
		p.vals["@"+g.GName] = g
	}

	// Clang leaves the entry block's label implicit when it is unnamed:
	// the body opens directly with an instruction. Synthesize the label
	// LLVM's numbering rule would assign so branches to it still resolve,
	// and so the entry block stays Blocks[0].
	var cur *Block
	if p.peek() != "}" && p.peekAt(1) != ":" {
		label := strconv.Itoa(nextUnnamed(params))
		cur = p.f.NewBlock(label)
		p.blocks[label] = cur
	}

	// Pre-scan for block labels so branches and phis can resolve forward.
	depth := 1
	for i := p.pos; i < len(p.toks) && depth > 0; i++ {
		switch p.toks[i].text {
		case "{":
			depth++
		case "}":
			depth--
		case ":":
			if i > p.pos || i > 0 {
				label := p.toks[i-1].text
				if !strings.HasPrefix(label, "%") && !strings.HasPrefix(label, "@") {
					if _, ok := p.blocks[label]; !ok {
						p.blocks[label] = p.f.NewBlock(label)
					}
				}
			}
		}
	}

	for p.peek() != "}" {
		if p.pos >= len(p.toks) {
			return p.errf("unexpected EOF in function %s", p.f.FName)
		}
		// Label?
		if p.peekAt(1) == ":" {
			cur = p.blocks[p.next()]
			p.next() // :
			continue
		}
		if cur == nil {
			return p.errf("instruction before first label")
		}
		in, err := p.parseInstr()
		if err != nil {
			return err
		}
		cur.append(in)
		if in.HasResult() {
			p.vals[in.Name] = in
		}
	}
	p.next() // }

	// Resolve forward references.
	for _, b := range p.f.Blocks {
		for _, in := range b.Instrs {
			for k, a := range in.Args {
				if fr, ok := a.(*fwdRef); ok {
					v, ok := p.vals[fr.name]
					if !ok {
						return p.errAt(fr.line, fr.col, "undefined value %%%s in %s", fr.name, p.f.FName)
					}
					if !Equal(v.Type(), fr.t) {
						return p.errAt(fr.line, fr.col, "%%%s used as %s but defined as %s",
							fr.name, fr.t, v.Type())
					}
					in.Args[k] = v
				}
			}
		}
	}
	return nil
}

// operand converts an operand token of a known type into a Value.
func (p *parser) operand(tok string, t Type) (Value, error) {
	switch {
	case strings.HasPrefix(tok, "%"):
		name := strings.TrimPrefix(tok, "%")
		if v, ok := p.vals[name]; ok {
			return v, nil
		}
		line, col := p.at(p.pos - 1)
		return &fwdRef{name: name, t: t, line: line, col: col}, nil
	case strings.HasPrefix(tok, "@"):
		g := p.m.GlobalByName(strings.TrimPrefix(tok, "@"))
		if g == nil {
			p.pos--
			defer func() { p.pos++ }()
			return nil, p.errf("unknown global %s", tok)
		}
		return g, nil
	case tok == "true":
		return I1c(true), nil
	case tok == "false":
		return I1c(false), nil
	default:
		if IsFloat(t) {
			// Three float spellings: Go/C hex floats with a binary exponent
			// (0x1p+01, from Print), LLVM scientific decimals (0.000000e+00),
			// and LLVM 16-digit hex bit patterns (0x3FB99999...). Only the
			// last lacks a 'p' exponent marker.
			if (strings.HasPrefix(tok, "0x") || strings.HasPrefix(tok, "0X")) &&
				!strings.ContainsAny(tok, "pP") {
				bits, err := strconv.ParseUint(tok[2:], 16, 64)
				if err != nil {
					p.pos--
					defer func() { p.pos++ }()
					return nil, p.errf("bad float hex literal %q", tok)
				}
				return FC(t, math.Float64frombits(bits)), nil
			}
			f, err := strconv.ParseFloat(tok, 64)
			if err != nil {
				p.pos--
				defer func() { p.pos++ }()
				return nil, p.errf("bad float literal %q", tok)
			}
			return FC(t, f), nil
		}
		v, err := strconv.ParseInt(tok, 0, 64)
		if err != nil {
			p.pos--
			defer func() { p.pos++ }()
			return nil, p.errf("bad int literal %q", tok)
		}
		return IC(t, v), nil
	}
}

// typedOperand parses "<type> [attrs] <ident>".
func (p *parser) typedOperand() (Value, error) {
	t, err := p.parseType()
	if err != nil {
		return nil, err
	}
	p.skipParamAttrs()
	return p.operand(p.next(), t)
}

// intrinsicName maps a call target to the engine's intrinsic namespace:
// `llvm.sqrt.f64`-style intrinsics collapse to their base name; libm-style
// direct names pass through.
func intrinsicName(callee string) string {
	if rest, ok := strings.CutPrefix(callee, "llvm."); ok {
		base := rest
		if i := strings.IndexByte(rest, '.'); i >= 0 {
			base = rest[:i]
		}
		if Intrinsics[base] {
			return base
		}
		return callee
	}
	return callee
}

func (p *parser) parseInstr() (*Instr, error) {
	name := ""
	if strings.HasPrefix(p.peek(), "%") {
		name = strings.TrimPrefix(p.next(), "%")
		if err := p.expect("="); err != nil {
			return nil, err
		}
	}
	mnem := p.next()
	for mnem == "tail" || mnem == "musttail" || mnem == "notail" {
		mnem = p.next()
	}
	op := OpcodeByName(mnem)
	if op == OpInvalid {
		p.pos--
		return nil, p.errf("unknown instruction %q", mnem)
	}
	// Wrapping/exactness/fast-math flags change UB latitude, not the
	// defined-case semantics the engine evaluates; skip them wherever
	// clang can emit them.
	for fastMathFlags[p.peek()] || p.peek() == "nuw" || p.peek() == "nsw" || p.peek() == "exact" {
		p.next()
	}
	in := &Instr{Op: op, Name: name, T: Void}

	switch {
	case op.IsBinOp():
		t, err := p.parseType()
		if err != nil {
			return nil, err
		}
		a, err := p.operand(p.next(), t)
		if err != nil {
			return nil, err
		}
		if err := p.expect(","); err != nil {
			return nil, err
		}
		b, err := p.operand(p.next(), t)
		if err != nil {
			return nil, err
		}
		in.T = t
		in.Args = []Value{a, b}

	case op == OpICmp || op == OpFCmp:
		pred := PredByName(p.next())
		if pred == PredInvalid {
			p.pos--
			return nil, p.errf("bad predicate %q", p.peek())
		}
		t, err := p.parseType()
		if err != nil {
			return nil, err
		}
		a, err := p.operand(p.next(), t)
		if err != nil {
			return nil, err
		}
		if err := p.expect(","); err != nil {
			return nil, err
		}
		b, err := p.operand(p.next(), t)
		if err != nil {
			return nil, err
		}
		in.T = I1
		in.Pred = pred
		in.Args = []Value{a, b}

	case op == OpLoad:
		if p.peek() == "volatile" {
			p.next()
		}
		t, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if err := p.expect(","); err != nil {
			return nil, err
		}
		ptr, err := p.typedOperand()
		if err != nil {
			return nil, err
		}
		in.T = t
		in.Args = []Value{ptr}

	case op == OpStore:
		if p.peek() == "volatile" {
			p.next()
		}
		val, err := p.typedOperand()
		if err != nil {
			return nil, err
		}
		if err := p.expect(","); err != nil {
			return nil, err
		}
		ptr, err := p.typedOperand()
		if err != nil {
			return nil, err
		}
		in.Args = []Value{val, ptr}

	case op == OpGEP:
		if p.peek() == "inbounds" {
			p.next()
		}
		if _, err := p.parseType(); err != nil { // pointee type, redundant
			return nil, err
		}
		if err := p.expect(","); err != nil {
			return nil, err
		}
		base, err := p.typedOperand()
		if err != nil {
			return nil, err
		}
		in.Args = []Value{base}
		for p.peek() == "," && !strings.HasPrefix(p.peekAt(1), "!") {
			p.next()
			idx, err := p.typedOperand()
			if err != nil {
				return nil, err
			}
			in.Args = append(in.Args, idx)
		}
		pt, ok := base.Type().(PtrType)
		if !ok {
			return nil, p.errf("gep base is not a pointer")
		}
		if len(in.Args) < 2 {
			return nil, p.errf("gep needs at least one index")
		}
		elem, ok := GEPElem(pt, len(in.Args)-1)
		if !ok {
			return nil, p.errf("gep indexes through non-array %s", pt.Elem)
		}
		in.T = Ptr(elem)

	case op == OpPhi:
		t, err := p.parseType()
		if err != nil {
			return nil, err
		}
		in.T = t
		for {
			if err := p.expect("["); err != nil {
				return nil, err
			}
			v, err := p.operand(p.next(), t)
			if err != nil {
				return nil, err
			}
			if err := p.expect(","); err != nil {
				return nil, err
			}
			blkTok := p.next()
			blk := p.blocks[strings.TrimPrefix(blkTok, "%")]
			if blk == nil {
				p.pos--
				return nil, p.errf("phi references unknown block %q", blkTok)
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			in.Args = append(in.Args, v)
			in.Blocks = append(in.Blocks, blk)
			if p.peek() != "," || p.peekAt(1) != "[" {
				break
			}
			p.next()
		}

	case op == OpSelect:
		for k := 0; k < 3; k++ {
			if k > 0 {
				if err := p.expect(","); err != nil {
					return nil, err
				}
			}
			v, err := p.typedOperand()
			if err != nil {
				return nil, err
			}
			in.Args = append(in.Args, v)
		}
		in.T = in.Args[1].Type()

	case op == OpBr:
		if p.peek() == "label" {
			p.next()
			blkTok := p.next()
			blk := p.blocks[strings.TrimPrefix(blkTok, "%")]
			if blk == nil {
				p.pos--
				return nil, p.errf("br to unknown block %q", blkTok)
			}
			in.Blocks = []*Block{blk}
		} else {
			t, err := p.parseType()
			if err != nil {
				return nil, err
			}
			cond, err := p.operand(p.next(), t)
			if err != nil {
				return nil, err
			}
			in.Args = []Value{cond}
			for k := 0; k < 2; k++ {
				if err := p.expect(","); err != nil {
					return nil, err
				}
				if err := p.expect("label"); err != nil {
					return nil, err
				}
				blkTok := p.next()
				blk := p.blocks[strings.TrimPrefix(blkTok, "%")]
				if blk == nil {
					p.pos--
					return nil, p.errf("br to unknown block %q", blkTok)
				}
				in.Blocks = append(in.Blocks, blk)
			}
		}

	case op == OpRet:
		if p.peek() == "void" {
			p.next()
		} else {
			v, err := p.typedOperand()
			if err != nil {
				return nil, err
			}
			in.Args = []Value{v}
		}

	case op == OpCall:
		p.skipParamAttrs()
		t, err := p.parseType()
		if err != nil {
			return nil, err
		}
		in.T = t
		callee := p.next()
		if !strings.HasPrefix(callee, "@") {
			p.pos--
			return nil, p.errf("call target must be @name, got %q", callee)
		}
		in.Callee = intrinsicName(strings.TrimPrefix(callee, "@"))
		if err := p.expect("("); err != nil {
			return nil, err
		}
		for p.peek() != ")" {
			if len(in.Args) > 0 {
				if err := p.expect(","); err != nil {
					return nil, err
				}
			}
			v, err := p.typedOperand()
			if err != nil {
				return nil, err
			}
			in.Args = append(in.Args, v)
		}
		p.next() // )

	case op.IsCast():
		v, err := p.typedOperand()
		if err != nil {
			return nil, err
		}
		if err := p.expect("to"); err != nil {
			return nil, err
		}
		t, err := p.parseType()
		if err != nil {
			return nil, err
		}
		in.T = t
		in.Args = []Value{v}

	default:
		return nil, p.errf("unsupported opcode %s", mnem)
	}

	p.skipInstrSuffix()

	if in.HasResult() && in.Name == "" {
		return nil, p.errf("%s result must be named", mnem)
	}
	return in, nil
}
