package ir

import (
	"fmt"
	"strings"
)

// This file implements the optimization passes that, in the original flow,
// clang/opt would run before the IR reaches gem5-SALAM: constant folding,
// dead-code elimination, and loop unrolling. The builder also supports
// unrolling at construction time (mirroring "#pragma unroll"); the pass
// here additionally works on already-built canonical loops.

// replaceUses rewrites every operand equal to old with new, function-wide.
func replaceUses(f *Function, old Value, new Value) {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for k, a := range in.Args {
				if a == old {
					in.Args[k] = new
				}
			}
		}
	}
}

// ConstFold folds instructions whose operands are all constants, replacing
// their uses with the computed constant. It returns the number of folds.
func ConstFold(f *Function) int {
	folded := 0
	done := map[*Instr]bool{}
	changed := true
	for changed {
		changed = false
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if done[in] {
					continue
				}
				c, ok := foldInstr(in)
				if !ok {
					continue
				}
				replaceUses(f, in, c)
				done[in] = true
				folded++
				changed = true
			}
		}
	}
	return folded
}

func foldInstr(in *Instr) (Value, bool) {
	allConst := len(in.Args) > 0
	bits := make([]uint64, len(in.Args))
	for k, a := range in.Args {
		v, ok := ConstBits(a)
		if !ok {
			allConst = false
			break
		}
		bits[k] = v
	}
	if !allConst {
		return nil, false
	}
	mk := func(v uint64) (Value, bool) {
		if IsFloat(in.T) {
			return FC(in.T, FloatFromBits(in.T, v)), true
		}
		return IC(in.T, SignExt(in.T, v)), true
	}
	switch {
	case in.Op.IsBinOp():
		return mk(EvalBin(in.Op, in.T, bits[0], bits[1]))
	case in.Op == OpICmp:
		return IC(I1, int64(EvalICmp(in.Pred, in.Args[0].Type(), bits[0], bits[1]))), true
	case in.Op == OpFCmp:
		return IC(I1, int64(EvalFCmp(in.Pred, in.Args[0].Type(), bits[0], bits[1]))), true
	case in.Op.IsCast():
		return mk(EvalCast(in.Op, in.Args[0].Type(), in.T, bits[0]))
	case in.Op == OpSelect:
		if bits[0] != 0 {
			return in.Args[1], true
		}
		return in.Args[2], true
	case in.Op == OpCall:
		return mk(EvalCall(in.Callee, in.T, bits))
	}
	return nil, false
}

// DCE removes unused side-effect-free instructions. Loads are considered
// removable (pure); stores and terminators never are. Returns removals.
func DCE(f *Function) int {
	removed := 0
	for {
		used := map[Value]bool{}
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				for _, a := range in.Args {
					used[a] = true
				}
			}
		}
		n := 0
		for _, b := range f.Blocks {
			kept := b.Instrs[:0]
			for _, in := range b.Instrs {
				dead := in.HasResult() && !used[in] && in.Op != OpStore && !in.Op.IsTerminator()
				if dead {
					n++
				} else {
					kept = append(kept, in)
				}
			}
			b.Instrs = kept
		}
		removed += n
		if n == 0 {
			return removed
		}
	}
}

// Loop describes a canonical counted loop: a header with an induction phi,
// a compare feeding a conditional branch to a single body block that is
// also the latch, and an exit.
type Loop struct {
	Header *Block
	Body   *Block
	Exit   *Block
	IV     *Instr // induction phi
	Cmp    *Instr // bounds compare
	Step   *Instr // iv increment in the body
}

// FindLoops detects canonical loops (as produced by Builder.Loop).
func FindLoops(f *Function) []Loop {
	var loops []Loop
	for _, h := range f.Blocks {
		t := h.Terminator()
		if t == nil || t.Op != OpBr || len(t.Blocks) != 2 {
			continue
		}
		body, exit := t.Blocks[0], t.Blocks[1]
		// Body must be a single block branching straight back to header.
		bt := body.Terminator()
		if bt == nil || bt.Op != OpBr || len(bt.Blocks) != 1 || bt.Blocks[0] != h {
			continue
		}
		if len(t.Args) != 1 {
			continue
		}
		cmp, ok := t.Args[0].(*Instr)
		if !ok || cmp.Op != OpICmp || cmp.Block() != h {
			continue
		}
		iv, ok := cmp.Args[0].(*Instr)
		if !ok || iv.Op != OpPhi || iv.Block() != h {
			continue
		}
		// Latch incoming of the iv must be an add in the body.
		var step *Instr
		for k, blk := range iv.Blocks {
			if blk == body {
				if s, ok := iv.Args[k].(*Instr); ok && s.Op == OpAdd && s.Block() == body && s.Args[0] == Value(iv) {
					step = s
				}
			}
		}
		if step == nil {
			continue
		}
		loops = append(loops, Loop{Header: h, Body: body, Exit: exit, IV: iv, Cmp: cmp, Step: step})
	}
	return loops
}

// TripCount returns the loop's constant trip count if its bounds and step
// are constants.
func (l Loop) TripCount() (int64, bool) {
	var lo int64
	found := false
	for k, blk := range l.IV.Blocks {
		if blk != l.Body {
			if c, ok := l.IV.Args[k].(*ConstInt); ok {
				lo, found = c.V, true
			}
		}
	}
	hiC, okHi := l.Cmp.Args[1].(*ConstInt)
	stC, okSt := l.Step.Args[1].(*ConstInt)
	if !found || !okHi || !okSt || stC.V <= 0 || l.Cmp.Pred != ISLT {
		return 0, false
	}
	n := (hiC.V - lo + stC.V - 1) / stC.V
	if n < 0 {
		n = 0
	}
	return n, true
}

// Unroll replicates the loop body factor times per iteration, multiplying
// the induction step. The loop must be canonical with a constant trip
// count divisible by factor.
func Unroll(f *Function, l Loop, factor int) error {
	if factor < 2 {
		return nil
	}
	trips, ok := l.TripCount()
	if !ok {
		return fmt.Errorf("ir: unroll: loop at %s has non-constant trip count", l.Header.BName)
	}
	if trips%int64(factor) != 0 {
		return fmt.Errorf("ir: unroll: trip count %d not divisible by %d", trips, factor)
	}

	// Header phis and their latch incomings.
	var phis []*Instr
	latchIn := map[*Instr]Value{}
	for _, in := range l.Header.Instrs {
		if in.Op != OpPhi {
			break
		}
		phis = append(phis, in)
		for k, blk := range in.Blocks {
			if blk == l.Body {
				latchIn[in] = in.Args[k]
			}
		}
	}

	origBody := append([]*Instr(nil), l.Body.Instrs...)
	origBody = origBody[:len(origBody)-1] // drop the back-edge br
	// prevOut maps original body values to their latest-copy equivalents.
	prevOut := map[Value]Value{}
	for _, in := range origBody {
		prevOut[in] = in
	}

	nameCnt := 0
	fresh := func(base string) string {
		nameCnt++
		return fmt.Sprintf("%s.u%d", base, nameCnt)
	}

	// Remove the back-edge temporarily.
	backEdge := l.Body.Instrs[len(l.Body.Instrs)-1]
	l.Body.Instrs = l.Body.Instrs[:len(l.Body.Instrs)-1]

	for k := 1; k < factor; k++ {
		// Map loop-carried values into this copy.
		m := map[Value]Value{}
		for _, phi := range phis {
			li := latchIn[phi]
			if mapped, ok := prevOut[li]; ok {
				m[phi] = mapped
			} else {
				m[phi] = li
			}
		}
		curOut := map[Value]Value{}
		for _, orig := range origBody {
			cp := &Instr{
				Op: orig.Op, T: orig.T, Name: fresh(orig.Name),
				Pred: orig.Pred, Callee: orig.Callee,
				Args:   append([]Value(nil), orig.Args...),
				Blocks: append([]*Block(nil), orig.Blocks...),
			}
			for ai, a := range cp.Args {
				if v, ok := m[a]; ok {
					cp.Args[ai] = v
				} else if v, ok := curOut[a]; ok {
					cp.Args[ai] = v
				}
			}
			curOut[orig] = cp
			l.Body.append(cp)
		}
		// Next copy reads from this one.
		for ov, nv := range curOut {
			prevOut[ov] = nv
		}
	}

	// Restore back edge; patch phi latch incomings to final copies.
	l.Body.Instrs = append(l.Body.Instrs, backEdge)
	for _, phi := range phis {
		for k, blk := range phi.Blocks {
			if blk == l.Body {
				if mapped, ok := prevOut[latchIn[phi]]; ok {
					phi.Args[k] = mapped
				}
			}
		}
	}
	return nil
}

// CSE removes redundant pure computations within each basic block:
// instructions with the same opcode, type, predicate/callee and operands
// collapse to the first occurrence. Loads are not pure (memory may change
// between them) and are left alone.
func CSE(f *Function) int {
	removed := 0
	for _, b := range f.Blocks {
		seen := map[string]*Instr{}
		kept := b.Instrs[:0]
		for _, in := range b.Instrs {
			if !csePure(in) {
				kept = append(kept, in)
				continue
			}
			k := cseKey(in)
			if prev, ok := seen[k]; ok {
				replaceUses(f, in, prev)
				removed++
				continue
			}
			seen[k] = in
			kept = append(kept, in)
		}
		b.Instrs = kept
	}
	return removed
}

func csePure(in *Instr) bool {
	switch {
	case in.Op.IsBinOp(), in.Op.IsCast():
		return true
	case in.Op == OpICmp, in.Op == OpFCmp, in.Op == OpGEP,
		in.Op == OpSelect, in.Op == OpCall:
		return true
	}
	return false
}

func cseKey(in *Instr) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d|%s|%d|%s", in.Op, in.T, in.Pred, in.Callee)
	for _, a := range in.Args {
		switch v := a.(type) {
		case *ConstInt:
			fmt.Fprintf(&sb, "|ci:%s:%d", v.T, v.V)
		case *ConstFloat:
			fmt.Fprintf(&sb, "|cf:%s:%x", v.T, v.Bits())
		default:
			fmt.Fprintf(&sb, "|p:%p", a)
		}
	}
	return sb.String()
}

// Optimize runs the standard pipeline: constant folding, common-
// subexpression elimination, then DCE.
func Optimize(f *Function) {
	ConstFold(f)
	CSE(f)
	DCE(f)
}
