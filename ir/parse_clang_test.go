package ir

import (
	"strings"
	"testing"
)

// clangDot is a faithful clang-14 `-O1 -S -emit-llvm` shape: module header
// with `;` inside string literals, discarded value names (numeric %0/%1
// params, numeric labels, implicit entry block %3), `; preds =` comments,
// nuw/nsw flags, `align`/`!tbaa`/`!llvm.loop` attachments, attribute
// groups, and named/numbered metadata.
const clangDot = `; ModuleID = 'dot.c'
source_filename = "kernels/dot; rev 2.c"
target datalayout = "e-m:e-p270:32:32-p271:32:32-p272:64:64-i64:64-f80:128-n8:16:32:64-S128"
target triple = "x86_64-unknown-linux-gnu"

; Function Attrs: nofree norecurse nosync nounwind uwtable
define dso_local double @dot(double* nocapture noundef readonly %0, double* nocapture noundef readonly %1, i64 noundef %2) local_unnamed_addr #0 {
  %4 = icmp sgt i64 %2, 0
  br i1 %4, label %5, label %13

5:                                                ; preds = %3, %5
  %6 = phi i64 [ %11, %5 ], [ 0, %3 ]
  %7 = phi double [ %10, %5 ], [ 0.000000e+00, %3 ]
  %8 = getelementptr inbounds double, double* %0, i64 %6
  %9 = load double, double* %8, align 8, !tbaa !5
  %x = getelementptr inbounds double, double* %1, i64 %6
  %y = load double, double* %x, align 8, !tbaa !5
  %m = fmul double %9, %y
  %10 = fadd double %7, %m
  %11 = add nuw nsw i64 %6, 1
  %12 = icmp eq i64 %11, %2
  br i1 %12, label %13, label %5, !llvm.loop !7

13:                                               ; preds = %5, %3
  %14 = phi double [ 0.000000e+00, %3 ], [ %10, %5 ]
  ret double %14
}

attributes #0 = { nofree norecurse nosync nounwind uwtable "frame-pointer"="none" "min-legal-vector-width"="0" "target-cpu"="x86-64" }

!llvm.module.flags = !{!0, !1, !2}
!llvm.ident = !{!4}

!0 = !{i32 1, !"wchar_size", i32 4}
!1 = !{i32 7, !"uwtable", i32 2}
!2 = !{i32 7, !"frame-pointer", i32 2}
!4 = !{!"clang version 14.0.0; vendor build"}
!5 = !{!6, !6, i64 0}
!6 = !{!"double", !3, i64 0}
!7 = distinct !{!7, !8}
!8 = !{!"llvm.loop.mustprogress"}
`

func TestParseClangStyleModule(t *testing.T) {
	m, err := Parse("dot.ll", clangDot)
	if err != nil {
		t.Fatal(err)
	}
	f := m.Func("dot")
	if f == nil {
		t.Fatal("function dot missing")
	}
	if err := Verify(f); err != nil {
		t.Fatalf("verify: %v", err)
	}
	// The implicit entry block must be Blocks[0], labeled with LLVM's
	// next-unnamed number after the three numbered params.
	if got := f.Blocks[0].BName; got != "3" {
		t.Fatalf("implicit entry label = %q, want \"3\"", got)
	}
	// Execute: dot of [1,2,3,4] with itself = 30.
	mem := NewFlatMem(0, 128)
	a, b := uint64(0), uint64(32)
	for i := 0; i < 4; i++ {
		mem.WriteF64(a+uint64(i)*8, float64(i+1))
		mem.WriteF64(b+uint64(i)*8, float64(i+1))
	}
	ret, _, err := Exec(f, []uint64{a, b, 4}, mem, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := FloatFromBits(F64, ret); got != 30 {
		t.Fatalf("dot = %g, want 30", got)
	}
}

func TestParseClangIntrinsicsAndFlags(t *testing.T) {
	src := `define dso_local double @hyp(double noundef %0, double noundef %1) local_unnamed_addr #0 {
  %3 = fmul fast double %0, %0
  %4 = fmul nnan ninf double %1, %1
  %5 = fadd double %3, %4
  %6 = tail call fast double @llvm.sqrt.f64(double %5)
  %7 = fcmp fast ogt double %6, 0x3FB999999999999A
  %8 = select i1 %7, double %6, double 1.000000e+00
  ret double %8
}

declare double @llvm.sqrt.f64(double) #1
`
	m, err := Parse("hyp.ll", src)
	if err != nil {
		t.Fatal(err)
	}
	f := m.Func("hyp")
	if err := Verify(f); err != nil {
		t.Fatalf("verify: %v", err)
	}
	// The llvm.sqrt.f64 callee must collapse to the engine intrinsic name.
	found := false
	for _, in := range f.Blocks[0].Instrs {
		if in.Op == OpCall {
			found = true
			if in.Callee != "sqrt" {
				t.Fatalf("callee = %q, want sqrt", in.Callee)
			}
		}
	}
	if !found {
		t.Fatal("no call parsed")
	}
	mem := NewFlatMem(0, 8)
	ret, _, err := Exec(f, []uint64{FloatToBits(F64, 3), FloatToBits(F64, 4)}, mem, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := FloatFromBits(F64, ret); got != 5 {
		t.Fatalf("hyp(3,4) = %g, want 5", got)
	}
	// 0x3FB999999999999A is the bit pattern of 0.1: check it decoded as a
	// bit pattern, not as a hex-float mantissa.
	hexConst := f.Blocks[0].Instrs[4].Args[1]
	if bits, ok := ConstBits(hexConst); !ok || FloatFromBits(F64, bits) != 0.1 {
		t.Fatalf("hex float const decoded wrong: %v", hexConst)
	}
}

func TestParseMultiIndexGEPMixedWidths(t *testing.T) {
	src := `@grid = dso_local global [4 x [8 x double]] zeroinitializer, align 16

define dso_local double @at(i64 noundef %0, i64 noundef %1) local_unnamed_addr #0 {
  %3 = getelementptr inbounds [4 x [8 x double]], [4 x [8 x double]]* @grid, i64 0, i64 %0, i64 %1
  %4 = load double, double* %3, align 8
  ret double %4
}
`
	m, err := Parse("grid.ll", src)
	if err != nil {
		t.Fatal(err)
	}
	f := m.Func("at")
	if err := Verify(f); err != nil {
		t.Fatalf("verify: %v", err)
	}
	g := m.GlobalByName("grid")
	if g == nil {
		t.Fatal("global grid missing")
	}
	mem := NewFlatMem(0, 4*8*8)
	g.Addr = 0
	mem.WriteF64((2*8+5)*8, 42)
	ret, _, err := Exec(f, []uint64{2, 5}, mem, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := FloatFromBits(F64, ret); got != 42 {
		t.Fatalf("grid[2][5] = %g, want 42", got)
	}
}

// Satellite: `;` inside string literals must not start a comment. The
// clang module header carries strings with semicolons in source_filename,
// metadata idents, and attribute values.
func TestParseSemicolonInsideStrings(t *testing.T) {
	src := `source_filename = "a;b.c"
target datalayout = "e-m:e;bogus"

define i64 @id(i64 %x) {
entry:
  ret i64 %x
}

attributes #0 = { "some-attr"="x;y" }

!llvm.ident = !{!0}
!0 = !{!"vendor clang; build 7"}
`
	m, err := Parse("semi.ll", src)
	if err != nil {
		t.Fatal(err)
	}
	f := m.Func("id")
	if f == nil {
		t.Fatal("function id missing: a ; inside a string swallowed real tokens")
	}
	ret, _, err := Exec(f, []uint64{7}, NewFlatMem(0, 8), nil)
	if err != nil || ret != 7 {
		t.Fatalf("id(7) = %d, err = %v", ret, err)
	}
}

// Satellite: every parse error must carry name:line:col so failures in
// real .ll files are debuggable.
func TestParseErrorPositions(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string // required substring of the error, incl. position
	}{
		{
			name: "bad mnemonic on line 3",
			src:  "define i64 @f(i64 %x) {\nentry:\n  %y = frobnicate i64 %x, 1\n  ret i64 %y\n}\n",
			want: "bad.ll:3:8",
		},
		{
			name: "bad mnemonic at line start",
			src:  "define i64 @f(i64 %x) {\nbogus ret i64 %x\n}\n",
			want: "bad.ll:2:1",
		},
		{
			name: "undefined value points at the use",
			src:  "define i64 @f(i64 %x) {\nentry:\n  %y = add i64 %x, %ghost\n  ret i64 %y\n}\n",
			want: "bad.ll:3:20",
		},
		{
			name: "bad float literal",
			src:  "define double @f(double %x) {\nentry:\n  %y = fadd double %x, 1.0q0\n  ret double %y\n}\n",
			want: "bad.ll:3:24",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse("bad.ll", tc.src)
			if err == nil {
				t.Fatal("expected error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not carry position %q", err, tc.want)
			}
		})
	}
}
