package ir

import (
	"strings"
	"testing"
)

func TestFormatInstrGolden(t *testing.T) {
	m := NewModule("fmt")
	b := NewBuilder(m)
	f := b.Func("f", F64,
		P("p", Ptr(F64)), P("q", Ptr(Arr(4, I32))), P("n", I64), P("x", F64))
	p, q, n, x := f.Params[0], f.Params[1], f.Params[2], f.Params[3]

	cases := []struct {
		in   *Instr
		want string
	}{
		{b.Add(n, I64c(1), "a"), "%a = add i64 %n, 1"},
		{b.FMul(x, F64c(2), "m"), "%m = fmul double %x, 0x1p+01"},
		{b.ICmp(ISLT, n, I64c(10), "c"), "%c = icmp slt i64 %n, 10"},
		{b.FCmp(FOGT, x, x, "fc"), "%fc = fcmp ogt double %x, %x"},
		{b.Load(p, "v"), "%v = load double, double* %p"},
		{b.GEP(p, "g", n), "%g = getelementptr double, double* %p, i64 %n"},
		{b.GEP(q, "g2", n, I64c(2)), "%g2 = getelementptr [4 x i32], [4 x i32]* %q, i64 %n, i64 2"},
		{b.Select(b.ICmp(IEQ, n, n, "e"), x, x, "s"), "%s = select i1 %e, double %x, double %x"},
		{b.Call("sqrt", F64, "r", x), "%r = call double @sqrt(double %x)"},
		{b.Trunc(n, I32, "t"), "%t = trunc i64 %n to i32"},
		{b.SIToFP(n, F64, "fp"), "%fp = sitofp i64 %n to double"},
	}
	st := b.Store(x, p)
	cases = append(cases, struct {
		in   *Instr
		want string
	}{st, "store double %x, double* %p"})
	ret := b.Ret(x)
	cases = append(cases, struct {
		in   *Instr
		want string
	}{ret, "ret double %x"})

	for _, c := range cases {
		if got := FormatInstr(c.in); got != c.want {
			t.Errorf("FormatInstr = %q, want %q", got, c.want)
		}
	}
}

func TestPrintBranchAndPhiForms(t *testing.T) {
	m := NewModule("cf")
	b := NewBuilder(m)
	f := b.Func("f", I64, P("n", I64))
	sum := b.LoopCarried("i", I64c(0), f.Params[0], 1, []Value{I64c(0)},
		func(iv Value, cv []Value) []Value {
			return []Value{b.Add(cv[0], iv, "acc")}
		})
	b.Ret(sum[0])
	text := Print(m)
	for _, want := range []string{
		"br label %i.head",
		"br i1 %i.cond, label %i.body, label %i.exit",
		"phi i64 [ 0, %entry ], [ %i.iv.next, %i.body ]",
		"define i64 @f(i64 %n) {",
		"ret i64 %i.carry",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("print missing %q in:\n%s", want, text)
		}
	}
}

func TestPrintVoidRetAndGlobals(t *testing.T) {
	m := NewModule("g")
	m.AddGlobal("buf", Arr(8, F64))
	b := NewBuilder(m)
	b.Func("f", Void)
	b.Ret(nil)
	text := Print(m)
	if !strings.Contains(text, "@buf = global [8 x double]") {
		t.Errorf("global missing:\n%s", text)
	}
	if !strings.Contains(text, "ret void") {
		t.Errorf("void ret missing:\n%s", text)
	}
}

func TestOpcodeAndPredNames(t *testing.T) {
	for _, op := range []Opcode{OpAdd, OpFMul, OpICmp, OpLoad, OpStore, OpGEP,
		OpPhi, OpSelect, OpBr, OpRet, OpCall, OpZExt, OpBitcast} {
		if OpcodeByName(op.String()) != op {
			t.Errorf("opcode name round trip failed: %s", op)
		}
	}
	if OpcodeByName("frobnicate") != OpInvalid {
		t.Error("bogus opcode resolved")
	}
	for _, p := range []Pred{IEQ, INE, ISLT, IULE, FOEQ, FOGE} {
		if PredByName(p.String()) != p {
			t.Errorf("pred round trip failed: %s", p)
		}
	}
	if PredByName("xyz") != PredInvalid {
		t.Error("bogus pred resolved")
	}
}

func TestBlockAndFunctionHelpers(t *testing.T) {
	m := NewModule("h")
	b := NewBuilder(m)
	f := b.Func("f", Void, P("n", I64))
	b.Loop("i", I64c(0), f.Params[0], 1, func(iv Value) {})
	b.Ret(nil)

	if f.Entry().Name() != "entry" {
		t.Fatalf("entry = %s", f.Entry().Name())
	}
	head := f.BlockByName("i.head")
	if head == nil {
		t.Fatal("BlockByName failed")
	}
	if f.BlockByName("nope") != nil {
		t.Fatal("found nonexistent block")
	}
	succs := head.Succs()
	if len(succs) != 2 {
		t.Fatalf("header succs = %d", len(succs))
	}
	preds := f.Preds()
	if len(preds[head]) != 2 { // entry + latch
		t.Fatalf("header preds = %d", len(preds[head]))
	}
	if f.NumInstrs() == 0 {
		t.Fatal("no instrs")
	}
	// NewBlock uniquifies.
	b1 := f.NewBlock("dup")
	b2 := f.NewBlock("dup")
	if b1.Name() == b2.Name() {
		t.Fatal("duplicate block names")
	}
	// Module helpers.
	if m.Func("f") != f || m.Func("zzz") != nil {
		t.Fatal("Module.Func broken")
	}
}

func TestInterpErrors(t *testing.T) {
	// Wrong arg count.
	m := NewModule("e")
	b := NewBuilder(m)
	f := b.Func("f", Void, P("n", I64))
	b.Ret(nil)
	mem := NewFlatMem(0, 8)
	if _, _, err := Exec(f, nil, mem, nil); err == nil {
		t.Fatal("wrong arg count accepted")
	}

	// Step limit.
	m2 := NewModule("e2")
	b2 := NewBuilder(m2)
	f2 := b2.Func("spin", Void)
	loop := b2.Block("loop")
	b2.Br(loop)
	b2.SetBlock(loop)
	b2.Br(loop)
	if _, _, err := Exec(f2, nil, mem, &ExecOpts{MaxSteps: 100}); err == nil {
		t.Fatal("infinite loop not bounded")
	}
}
