package ir

import (
	"testing"
)

// buildDot builds: double dot(double* a, double* b, i64 n) — the canonical
// loop-carried reduction.
func buildDot(t *testing.T, unroll int) (*Module, *Function) {
	t.Helper()
	m := NewModule("dot")
	b := NewBuilder(m)
	f := b.Func("dot", F64, P("a", Ptr(F64)), P("b", Ptr(F64)), P("n", I64))
	a, bp, n := f.Params[0], f.Params[1], f.Params[2]
	sum := b.LoopCarriedUnrolled("i", I64c(0), n, 1, unroll,
		[]Value{F64c(0)}, func(iv Value, carried []Value) []Value {
			av := b.Load(b.GEP(a, "pa", iv), "va")
			bv := b.Load(b.GEP(bp, "pb", iv), "vb")
			return []Value{b.FAdd(carried[0], b.FMul(av, bv, "prod"), "acc")}
		})
	b.Ret(sum[0])
	if err := Verify(f); err != nil {
		t.Fatalf("verify: %v", err)
	}
	return m, f
}

func runDot(t *testing.T, f *Function, n int) float64 {
	t.Helper()
	mem := NewFlatMem(0x1000, 1<<16)
	aAddr := mem.AllocFor(F64, n)
	bAddr := mem.AllocFor(F64, n)
	for i := 0; i < n; i++ {
		mem.WriteF64(aAddr+uint64(i*8), float64(i+1))
		mem.WriteF64(bAddr+uint64(i*8), 2)
	}
	ret, _, err := Exec(f, []uint64{aAddr, bAddr, uint64(n)}, mem, nil)
	if err != nil {
		t.Fatalf("exec: %v", err)
	}
	return FloatFromBits(F64, ret)
}

func TestBuilderLoopCarried(t *testing.T) {
	_, f := buildDot(t, 1)
	got := runDot(t, f, 8)
	// sum 2*(1..8) = 72
	if got != 72 {
		t.Fatalf("dot = %g, want 72", got)
	}
}

func TestBuilderLoopUnrolled(t *testing.T) {
	_, f1 := buildDot(t, 1)
	_, f4 := buildDot(t, 4)
	if got, want := runDot(t, f4, 16), runDot(t, f1, 16); got != want {
		t.Fatalf("unrolled dot = %g, want %g", got, want)
	}
	// Unrolled body must contain 4x the FP work in one block.
	var body *Block
	for _, b := range f4.Blocks {
		if b.BName == "i.body" {
			body = b
		}
	}
	if body == nil {
		t.Fatal("no body block")
	}
	fmuls := 0
	for _, in := range body.Instrs {
		if in.Op == OpFMul {
			fmuls++
		}
	}
	if fmuls != 4 {
		t.Fatalf("unrolled body has %d fmuls, want 4", fmuls)
	}
}

func TestBuilderNestedLoops(t *testing.T) {
	// 4x4 matrix sum via nested loops.
	m := NewModule("msum")
	b := NewBuilder(m)
	f := b.Func("msum", F64, P("a", Ptr(F64)))
	var outer []Value
	outer = b.LoopCarried("i", I64c(0), I64c(4), 1, []Value{F64c(0)},
		func(i Value, ci []Value) []Value {
			inner := b.LoopCarried("j", I64c(0), I64c(4), 1, []Value{ci[0]},
				func(j Value, cj []Value) []Value {
					idx := b.Add(b.Mul(i, I64c(4), "row"), j, "idx")
					v := b.Load(b.GEP(f.Params[0], "p", idx), "v")
					return []Value{b.FAdd(cj[0], v, "acc")}
				})
			return []Value{inner[0]}
		})
	b.Ret(outer[0])
	if err := Verify(f); err != nil {
		t.Fatalf("verify: %v", err)
	}
	mem := NewFlatMem(0, 1<<12)
	base := mem.AllocFor(F64, 16)
	for i := 0; i < 16; i++ {
		mem.WriteF64(base+uint64(i*8), 1)
	}
	ret, _, err := Exec(f, []uint64{base}, mem, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := FloatFromBits(F64, ret); got != 16 {
		t.Fatalf("msum = %g, want 16", got)
	}
}

func TestBuilderIfElseAndIfValue(t *testing.T) {
	m := NewModule("cond")
	b := NewBuilder(m)
	f := b.Func("clamp", I64, P("x", I64))
	x := f.Params[0]
	isNeg := b.ICmp(ISLT, x, I64c(0), "neg")
	v := b.IfValue(isNeg, "c", func() Value { return I64c(0) }, func() Value { return x })
	b.Ret(v)
	if err := Verify(f); err != nil {
		t.Fatal(err)
	}
	mem := NewFlatMem(0, 16)
	neg5 := int64(-5)
	ret, _, _ := Exec(f, []uint64{uint64(neg5)}, mem, nil)
	if SignExt(I64, ret) != 0 {
		t.Fatalf("clamp(-5) = %d", SignExt(I64, ret))
	}
	ret, _, _ = Exec(f, []uint64{7}, mem, nil)
	if ret != 7 {
		t.Fatalf("clamp(7) = %d", ret)
	}
}

func TestBuilderIfStoresConditionally(t *testing.T) {
	m := NewModule("cs")
	b := NewBuilder(m)
	f := b.Func("condstore", Void, P("p", Ptr(I64)), P("x", I64))
	p, x := f.Params[0], f.Params[1]
	big := b.ICmp(ISGT, x, I64c(10), "big")
	b.If(big, "w", func() { b.Store(x, p) })
	b.Ret(nil)
	if err := Verify(f); err != nil {
		t.Fatal(err)
	}
	mem := NewFlatMem(0, 64)
	addr := mem.AllocFor(I64, 1)
	if _, _, err := Exec(f, []uint64{addr, 5}, mem, nil); err != nil {
		t.Fatal(err)
	}
	if mem.ReadI64(addr) != 0 {
		t.Fatal("store happened for x=5")
	}
	if _, _, err := Exec(f, []uint64{addr, 50}, mem, nil); err != nil {
		t.Fatal(err)
	}
	if mem.ReadI64(addr) != 50 {
		t.Fatal("store missing for x=50")
	}
}

func TestBuilderUniqueNames(t *testing.T) {
	m := NewModule("u")
	b := NewBuilder(m)
	f := b.Func("f", Void, P("x", I64))
	x := f.Params[0]
	i1 := b.Add(x, x, "t")
	i2 := b.Add(x, x, "t")
	b.Ret(nil)
	if i1.Name == i2.Name {
		t.Fatalf("duplicate SSA names: %s", i1.Name)
	}
	if err := Verify(f); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderEmitAfterTerminatorPanics(t *testing.T) {
	m := NewModule("p")
	b := NewBuilder(m)
	b.Func("f", Void)
	b.Ret(nil)
	defer func() {
		if recover() == nil {
			t.Fatal("emit after terminator did not panic")
		}
	}()
	b.Add(I64c(1), I64c(1), "t")
}

func TestFlatMemTypedAccess(t *testing.T) {
	mem := NewFlatMem(0x100, 256)
	mem.WriteF32(0x100, 1.25)
	if mem.ReadF32(0x100) != 1.25 {
		t.Fatal("f32 round trip")
	}
	mem.WriteI32(0x108, -42)
	if mem.ReadI32(0x108) != -42 {
		t.Fatal("i32 round trip")
	}
	mem.WriteBits(I16, 0x110, 0xbeef)
	if mem.ReadBits(I16, 0x110) != 0xbeef {
		t.Fatal("i16 round trip")
	}
	mem.WriteBits(I8, 0x112, 0x7a)
	if mem.ReadBits(I8, 0x112) != 0x7a {
		t.Fatal("i8 round trip")
	}
	if !mem.Contains(0x100, 256) || mem.Contains(0x100, 257) || mem.Contains(0xff, 1) {
		t.Fatal("Contains bounds wrong")
	}
}

func TestFlatMemAllocAlignment(t *testing.T) {
	mem := NewFlatMem(0x1000, 4096)
	a := mem.Alloc(3, 8)
	b := mem.Alloc(8, 8)
	if a%8 != 0 || b%8 != 0 {
		t.Fatalf("misaligned allocs %#x %#x", a, b)
	}
	if b < a+3 {
		t.Fatal("overlapping allocs")
	}
}

func TestFlatMemOOBPanics(t *testing.T) {
	mem := NewFlatMem(0x1000, 16)
	defer func() {
		if recover() == nil {
			t.Fatal("OOB access did not panic")
		}
	}()
	mem.ReadBits(I64, 0x1010)
}
