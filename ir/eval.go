package ir

import (
	"fmt"
	"math"
)

// This file holds the single source of truth for instruction semantics.
// Both the functional interpreter (used for goldens, trace generation, and
// HLS profiling) and the cycle-accurate runtime engine in internal/core
// evaluate values through these functions, which is what makes gosalam an
// "execute-in-execute" model: the same computation happens in both worlds.

// EvalBin evaluates a binary arithmetic/bitwise op on runtime bits.
func EvalBin(op Opcode, t Type, a, b uint64) uint64 {
	switch op {
	case OpAdd:
		return MaskInt(t, a+b)
	case OpSub:
		return MaskInt(t, a-b)
	case OpMul:
		return MaskInt(t, a*b)
	case OpSDiv:
		sb := SignExt(t, b)
		if sb == 0 {
			return 0 // accelerator datapaths saturate rather than trap
		}
		return MaskInt(t, uint64(SignExt(t, a)/sb))
	case OpUDiv:
		ub := MaskInt(t, b)
		if ub == 0 {
			return 0
		}
		return MaskInt(t, MaskInt(t, a)/ub)
	case OpSRem:
		sb := SignExt(t, b)
		if sb == 0 {
			return 0
		}
		return MaskInt(t, uint64(SignExt(t, a)%sb))
	case OpURem:
		ub := MaskInt(t, b)
		if ub == 0 {
			return 0
		}
		return MaskInt(t, MaskInt(t, a)%ub)
	case OpAnd:
		return MaskInt(t, a&b)
	case OpOr:
		return MaskInt(t, a|b)
	case OpXor:
		return MaskInt(t, a^b)
	case OpShl:
		return MaskInt(t, a<<(b&63))
	case OpLShr:
		return MaskInt(t, MaskInt(t, a)>>(b&63))
	case OpAShr:
		return MaskInt(t, uint64(SignExt(t, a)>>(b&63)))
	case OpFAdd:
		return FloatToBits(t, FloatFromBits(t, a)+FloatFromBits(t, b))
	case OpFSub:
		return FloatToBits(t, FloatFromBits(t, a)-FloatFromBits(t, b))
	case OpFMul:
		return FloatToBits(t, FloatFromBits(t, a)*FloatFromBits(t, b))
	case OpFDiv:
		return FloatToBits(t, FloatFromBits(t, a)/FloatFromBits(t, b))
	}
	panic(fmt.Sprintf("ir: EvalBin on %s", op))
}

// EvalICmp evaluates an integer comparison; t is the operand type.
func EvalICmp(pred Pred, t Type, a, b uint64) uint64 {
	sa, sb := SignExt(t, a), SignExt(t, b)
	ua, ub := MaskInt(t, a), MaskInt(t, b)
	var r bool
	switch pred {
	case IEQ:
		r = ua == ub
	case INE:
		r = ua != ub
	case ISLT:
		r = sa < sb
	case ISLE:
		r = sa <= sb
	case ISGT:
		r = sa > sb
	case ISGE:
		r = sa >= sb
	case IULT:
		r = ua < ub
	case IULE:
		r = ua <= ub
	case IUGT:
		r = ua > ub
	case IUGE:
		r = ua >= ub
	default:
		panic(fmt.Sprintf("ir: EvalICmp with %s", pred))
	}
	if r {
		return 1
	}
	return 0
}

// EvalFCmp evaluates an ordered float comparison; t is the operand type.
func EvalFCmp(pred Pred, t Type, a, b uint64) uint64 {
	fa, fb := FloatFromBits(t, a), FloatFromBits(t, b)
	if math.IsNaN(fa) || math.IsNaN(fb) {
		return 0 // ordered predicates are false on NaN
	}
	var r bool
	switch pred {
	case FOEQ:
		r = fa == fb
	case FONE:
		r = fa != fb
	case FOLT:
		r = fa < fb
	case FOLE:
		r = fa <= fb
	case FOGT:
		r = fa > fb
	case FOGE:
		r = fa >= fb
	default:
		panic(fmt.Sprintf("ir: EvalFCmp with %s", pred))
	}
	if r {
		return 1
	}
	return 0
}

// EvalCast converts v from type `from` to type `to` per the cast opcode.
func EvalCast(op Opcode, from, to Type, v uint64) uint64 {
	switch op {
	case OpZExt:
		return MaskInt(to, MaskInt(from, v))
	case OpSExt:
		return MaskInt(to, uint64(SignExt(from, v)))
	case OpTrunc:
		return MaskInt(to, v)
	case OpFPExt, OpFPTrunc:
		return FloatToBits(to, FloatFromBits(from, v))
	case OpFPToSI:
		f := FloatFromBits(from, v)
		return MaskInt(to, uint64(int64(f)))
	case OpSIToFP:
		return FloatToBits(to, float64(SignExt(from, v)))
	case OpBitcast:
		return v
	}
	panic(fmt.Sprintf("ir: EvalCast on %s", op))
}

// Intrinsics supported by call instructions. All are pure math functions:
// the paper's flow inlines user code, so calls only reach hardware math IP.
var Intrinsics = map[string]bool{
	"sqrt": true, "fabs": true, "exp": true, "log": true,
	"sin": true, "cos": true, "fmin": true, "fmax": true,
	"smin": true, "smax": true, "abs": true,
}

// EvalCall evaluates an intrinsic call. t is the result type; args are the
// operand bits (operand types equal t for the supported intrinsics).
func EvalCall(callee string, t Type, args []uint64) uint64 {
	if IsFloat(t) {
		f := func(i int) float64 { return FloatFromBits(t, args[i]) }
		switch callee {
		case "sqrt":
			return FloatToBits(t, math.Sqrt(f(0)))
		case "fabs":
			return FloatToBits(t, math.Abs(f(0)))
		case "exp":
			return FloatToBits(t, math.Exp(f(0)))
		case "log":
			return FloatToBits(t, math.Log(f(0)))
		case "sin":
			return FloatToBits(t, math.Sin(f(0)))
		case "cos":
			return FloatToBits(t, math.Cos(f(0)))
		case "fmin":
			return FloatToBits(t, math.Min(f(0), f(1)))
		case "fmax":
			return FloatToBits(t, math.Max(f(0), f(1)))
		}
	} else {
		s := func(i int) int64 { return SignExt(t, args[i]) }
		switch callee {
		case "abs":
			v := s(0)
			if v < 0 {
				v = -v
			}
			return MaskInt(t, uint64(v))
		case "smin":
			if s(0) < s(1) {
				return MaskInt(t, args[0])
			}
			return MaskInt(t, args[1])
		case "smax":
			if s(0) > s(1) {
				return MaskInt(t, args[0])
			}
			return MaskInt(t, args[1])
		}
	}
	panic(fmt.Sprintf("ir: unknown intrinsic %q on %s", callee, t))
}

// EvalGEP computes the byte address of a GEP given the base address and
// index operand bits. Index operands are treated as signed.
func EvalGEP(i *Instr, base uint64, idxBits []uint64) uint64 {
	strides := i.GEPStrides()
	addr := int64(base)
	for k, s := range strides {
		idx := SignExt(i.Args[k+1].Type(), idxBits[k])
		addr += idx * s
	}
	return uint64(addr)
}
