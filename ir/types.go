// Package ir implements the LLVM-IR subset that gosalam models accelerators
// with. It stands in for LLVM + clang in the original gem5-SALAM flow: a
// typed SSA representation with basic blocks, a builder API whose loop and
// if helpers mirror what clang pragmas (unrolling, if-conversion) give the
// paper, a text printer/parser, a verifier, optimization passes, and a
// functional interpreter used for golden checks, trace generation and HLS
// profiling.
package ir

import (
	"fmt"
	"strings"
)

// Kind discriminates Type implementations.
type Kind int

// Type kinds.
const (
	KVoid Kind = iota
	KInt
	KFloat
	KPtr
	KArray
)

// Type is an IR type. Types are immutable and compared with Equal.
type Type interface {
	Kind() Kind
	// Bits is the value width in bits (pointers are 64, void is 0).
	Bits() int
	// SizeBytes is the in-memory footprint (void is 0).
	SizeBytes() int
	String() string
}

type voidType struct{}

func (voidType) Kind() Kind     { return KVoid }
func (voidType) Bits() int      { return 0 }
func (voidType) SizeBytes() int { return 0 }
func (voidType) String() string { return "void" }

// IntType is an integer type of a fixed bit width (i1, i8, ... i64).
type IntType struct{ W int }

func (t IntType) Kind() Kind { return KInt }
func (t IntType) Bits() int  { return t.W }
func (t IntType) SizeBytes() int {
	if t.W <= 8 {
		return 1
	}
	return t.W / 8
}
func (t IntType) String() string { return fmt.Sprintf("i%d", t.W) }

// FloatType is an IEEE float type (f32 or f64).
type FloatType struct{ W int }

func (t FloatType) Kind() Kind     { return KFloat }
func (t FloatType) Bits() int      { return t.W }
func (t FloatType) SizeBytes() int { return t.W / 8 }
func (t FloatType) String() string {
	if t.W == 32 {
		return "float"
	}
	return "double"
}

// PtrType is a typed pointer.
type PtrType struct{ Elem Type }

func (t PtrType) Kind() Kind     { return KPtr }
func (t PtrType) Bits() int      { return 64 }
func (t PtrType) SizeBytes() int { return 8 }
func (t PtrType) String() string { return t.Elem.String() + "*" }

// ArrayType is a fixed-length array, used as a pointee for GEP addressing.
type ArrayType struct {
	N    int
	Elem Type
}

func (t ArrayType) Kind() Kind     { return KArray }
func (t ArrayType) Bits() int      { return t.N * t.Elem.Bits() }
func (t ArrayType) SizeBytes() int { return t.N * t.Elem.SizeBytes() }
func (t ArrayType) String() string {
	return fmt.Sprintf("[%d x %s]", t.N, t.Elem.String())
}

// Singleton types.
var (
	Void Type = voidType{}
	I1   Type = IntType{1}
	I8   Type = IntType{8}
	I16  Type = IntType{16}
	I32  Type = IntType{32}
	I64  Type = IntType{64}
	F32  Type = FloatType{32}
	F64  Type = FloatType{64}
)

// Ptr returns a pointer type to elem.
func Ptr(elem Type) Type { return PtrType{Elem: elem} }

// Arr returns an n-element array of elem.
func Arr(n int, elem Type) Type { return ArrayType{N: n, Elem: elem} }

// Equal reports structural type equality.
func Equal(a, b Type) bool {
	if a.Kind() != b.Kind() {
		return false
	}
	switch at := a.(type) {
	case voidType:
		return true
	case IntType:
		return at.W == b.(IntType).W
	case FloatType:
		return at.W == b.(FloatType).W
	case PtrType:
		return Equal(at.Elem, b.(PtrType).Elem)
	case ArrayType:
		bt := b.(ArrayType)
		return at.N == bt.N && Equal(at.Elem, bt.Elem)
	}
	return false
}

// IsInt reports whether t is an integer type.
func IsInt(t Type) bool { return t.Kind() == KInt }

// IsFloat reports whether t is a float type.
func IsFloat(t Type) bool { return t.Kind() == KFloat }

// IsPtr reports whether t is a pointer type.
func IsPtr(t Type) bool { return t.Kind() == KPtr }

// ParseType parses a type string as emitted by Type.String.
func ParseType(s string) (Type, error) {
	s = strings.TrimSpace(s)
	if strings.HasSuffix(s, "*") {
		elem, err := ParseType(s[:len(s)-1])
		if err != nil {
			return nil, err
		}
		return Ptr(elem), nil
	}
	switch s {
	case "void":
		return Void, nil
	case "float":
		return F32, nil
	case "double":
		return F64, nil
	}
	if strings.HasPrefix(s, "i") {
		var w int
		if _, err := fmt.Sscanf(s, "i%d", &w); err == nil && w > 0 && w <= 64 {
			return IntType{w}, nil
		}
	}
	if strings.HasPrefix(s, "[") && strings.HasSuffix(s, "]") {
		inner := s[1 : len(s)-1]
		idx := strings.Index(inner, " x ")
		if idx < 0 {
			return nil, fmt.Errorf("ir: bad array type %q", s)
		}
		var n int
		if _, err := fmt.Sscanf(inner[:idx], "%d", &n); err != nil {
			return nil, fmt.Errorf("ir: bad array length in %q", s)
		}
		elem, err := ParseType(inner[idx+3:])
		if err != nil {
			return nil, err
		}
		return Arr(n, elem), nil
	}
	return nil, fmt.Errorf("ir: unknown type %q", s)
}
