package ir

import (
	"bytes"
	"testing"
)

// TestBuilderConvenienceOps drives every arithmetic convenience through
// the interpreter against hand-computed expectations.
func TestBuilderConvenienceOps(t *testing.T) {
	m := NewModule("api")
	b := NewBuilder(m)
	f := b.Func("f", I64, P("x", I64), P("y", I64))
	x, y := f.Params[0], f.Params[1]

	sd := b.SDiv(x, y, "sd")       // -20 / 3 = -6
	ud := b.UDiv(y, I64c(2), "ud") // 3 / 2 = 1
	ur := b.URem(y, I64c(2), "ur") // 3 % 2 = 1
	an := b.And(y, I64c(1), "an")  // 1
	or := b.Or(an, I64c(4), "or")  // 5
	sum := b.Add(sd, ud, "s1")     // -5
	sum = b.Add(sum, ur, "s2")     // -4
	sum = b.Add(sum, or, "s3")     // 1
	b.Ret(sum)
	if err := Verify(f); err != nil {
		t.Fatal(err)
	}
	mem := NewFlatMem(0, 8)
	neg20 := int64(-20)
	ret, _, err := Exec(f, []uint64{uint64(neg20), 3}, mem, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := SignExt(I64, ret); got != 1 {
		t.Fatalf("ret = %d, want 1", got)
	}
}

func TestBuilderIfElseBothArms(t *testing.T) {
	m := NewModule("ie")
	b := NewBuilder(m)
	f := b.Func("f", Void, P("p", Ptr(I64)), P("x", I64))
	p, x := f.Params[0], f.Params[1]
	c := b.ICmp(ISGE, x, I64c(0), "c")
	b.IfElse(c, "br", func() {
		b.Store(I64c(1), p)
	}, func() {
		b.Store(I64c(-1), p)
	})
	b.Ret(nil)
	if err := Verify(f); err != nil {
		t.Fatal(err)
	}
	mem := NewFlatMem(0, 64)
	addr := mem.AllocFor(I64, 1)
	if _, _, err := Exec(f, []uint64{addr, 7}, mem, nil); err != nil {
		t.Fatal(err)
	}
	if mem.ReadI64(addr) != 1 {
		t.Fatal("then arm not taken")
	}
	neg := int64(-7)
	if _, _, err := Exec(f, []uint64{addr, uint64(neg)}, mem, nil); err != nil {
		t.Fatal(err)
	}
	if mem.ReadI64(addr) != -1 {
		t.Fatal("else arm not taken")
	}
}

func TestFlatMemRawAndCursor(t *testing.T) {
	mem := NewFlatMem(0x100, 256)
	src := []byte{1, 2, 3, 4, 5}
	mem.WriteRaw(0x110, src)
	dst := make([]byte, 5)
	mem.ReadRaw(0x110, dst)
	if !bytes.Equal(src, dst) {
		t.Fatal("raw round trip failed")
	}
	mem.SetAllocBase(0x140)
	if mem.AllocCursor() != 0x140 {
		t.Fatalf("cursor = %#x", mem.AllocCursor())
	}
	a := mem.Alloc(8, 8)
	if a != 0x140 {
		t.Fatalf("alloc after SetAllocBase = %#x", a)
	}
	// F64/I64 typed helpers.
	mem.WriteF64(0x150, 2.5)
	if mem.ReadF64(0x150) != 2.5 {
		t.Fatal("f64 helpers")
	}
	mem.WriteI64(0x158, -9)
	if mem.ReadI64(0x158) != -9 {
		t.Fatal("i64 helpers")
	}
}

func TestInstrAccessors(t *testing.T) {
	m := NewModule("acc")
	b := NewBuilder(m)
	f := b.Func("fn", Void, P("p", Ptr(I64)))
	ld := b.Load(f.Params[0], "v")
	st := b.Store(ld, f.Params[0])
	b.Ret(nil)

	if !ld.Op.IsMemAccess() || !st.Op.IsMemAccess() {
		t.Fatal("IsMemAccess")
	}
	if ld.Block().Func() != f {
		t.Fatal("Block().Func()")
	}
	if f.Name() != "fn" {
		t.Fatal("Function.Name")
	}
	if f.Entry().Name() != "entry" {
		t.Fatal("Entry")
	}
	if FormatValue(ld) != "i64 %v" {
		t.Fatalf("FormatValue = %q", FormatValue(ld))
	}
	if ld.Ident() != "%v" || f.Params[0].Ident() != "%p" {
		t.Fatal("Ident")
	}
	g := m.AddGlobal("gbl", F64)
	if g.Ident() != "@gbl" || !Equal(g.Type(), Ptr(F64)) {
		t.Fatal("global accessors")
	}
}

func TestEvalFCmpF32AndIntrinsicsF32(t *testing.T) {
	a, b := FloatToBits(F32, 1.5), FloatToBits(F32, 2.5)
	if EvalFCmp(FOLT, F32, a, b) != 1 {
		t.Fatal("f32 olt")
	}
	if EvalFCmp(FONE, F32, a, a) != 0 {
		t.Fatal("f32 one")
	}
	if got := FloatFromBits(F32, EvalCall("sqrt", F32, []uint64{FloatToBits(F32, 4)})); got != 2 {
		t.Fatalf("f32 sqrt = %g", got)
	}
	if got := FloatFromBits(F32, EvalCall("exp", F32, []uint64{FloatToBits(F32, 0)})); got != 1 {
		t.Fatalf("f32 exp = %g", got)
	}
	if got := FloatFromBits(F64, EvalCall("log", F64, []uint64{FloatToBits(F64, 1)})); got != 0 {
		t.Fatalf("log = %g", got)
	}
	if got := FloatFromBits(F64, EvalCall("sin", F64, []uint64{0})); got != 0 {
		t.Fatalf("sin = %g", got)
	}
	if got := FloatFromBits(F64, EvalCall("cos", F64, []uint64{0})); got != 1 {
		t.Fatalf("cos = %g", got)
	}
}

func TestUnknownIntrinsicPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown intrinsic did not panic")
		}
	}()
	EvalCall("bogus", F64, []uint64{0})
}
