package ir

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEvalBinInt(t *testing.T) {
	cases := []struct {
		op   Opcode
		t    Type
		a, b uint64
		want uint64
	}{
		{OpAdd, I64, 3, 4, 7},
		{OpAdd, I8, 0xff, 1, 0},
		{OpSub, I64, 3, 5, ^uint64(1)}, // -2
		{OpMul, I32, 7, 6, 42},
		{OpSDiv, I32, uint64(uint32(math.MaxUint32 - 6)), 2, uint64(uint32(0xfffffffd))}, // -7/2 = -3
		{OpSDiv, I32, 9, 0, 0}, // div-by-zero saturates to 0
		{OpUDiv, I32, 9, 2, 4},
		{OpSRem, I32, 9, 4, 1},
		{OpURem, I32, 9, 4, 1},
		{OpAnd, I8, 0xf0, 0x3c, 0x30},
		{OpOr, I8, 0xf0, 0x0c, 0xfc},
		{OpXor, I8, 0xff, 0x0f, 0xf0},
		{OpShl, I8, 1, 3, 8},
		{OpShl, I8, 0x80, 1, 0},
		{OpLShr, I8, 0x80, 1, 0x40},
		{OpAShr, I8, 0x80, 1, 0xc0},
	}
	for _, c := range cases {
		if got := EvalBin(c.op, c.t, c.a, c.b); got != c.want {
			t.Errorf("%s %s(%#x, %#x) = %#x, want %#x", c.op, c.t, c.a, c.b, got, c.want)
		}
	}
}

func TestEvalBinFloat(t *testing.T) {
	a, b := FloatToBits(F64, 1.5), FloatToBits(F64, 2.0)
	if got := FloatFromBits(F64, EvalBin(OpFAdd, F64, a, b)); got != 3.5 {
		t.Errorf("fadd = %g", got)
	}
	if got := FloatFromBits(F64, EvalBin(OpFSub, F64, a, b)); got != -0.5 {
		t.Errorf("fsub = %g", got)
	}
	if got := FloatFromBits(F64, EvalBin(OpFMul, F64, a, b)); got != 3.0 {
		t.Errorf("fmul = %g", got)
	}
	if got := FloatFromBits(F64, EvalBin(OpFDiv, F64, a, b)); got != 0.75 {
		t.Errorf("fdiv = %g", got)
	}
	// f32 path.
	a32, b32 := FloatToBits(F32, 1.5), FloatToBits(F32, 0.5)
	if got := FloatFromBits(F32, EvalBin(OpFAdd, F32, a32, b32)); got != 2.0 {
		t.Errorf("f32 fadd = %g", got)
	}
}

func TestEvalICmp(t *testing.T) {
	neg := uint64(uint32(0xffffffff)) // -1 as i32
	cases := []struct {
		p    Pred
		a, b uint64
		want uint64
	}{
		{IEQ, 5, 5, 1}, {IEQ, 5, 6, 0},
		{INE, 5, 6, 1},
		{ISLT, neg, 0, 1}, // -1 < 0 signed
		{IULT, neg, 0, 0}, // 0xffffffff < 0 unsigned is false
		{ISGT, 0, neg, 1},
		{IUGT, 0, neg, 0},
		{ISLE, 3, 3, 1}, {ISGE, 3, 3, 1},
		{IULE, 3, 4, 1}, {IUGE, 5, 4, 1},
	}
	for _, c := range cases {
		if got := EvalICmp(c.p, I32, c.a, c.b); got != c.want {
			t.Errorf("icmp %s(%#x, %#x) = %d, want %d", c.p, c.a, c.b, got, c.want)
		}
	}
}

func TestEvalFCmp(t *testing.T) {
	f := func(v float64) uint64 { return FloatToBits(F64, v) }
	if EvalFCmp(FOLT, F64, f(1), f(2)) != 1 {
		t.Fatal("1 < 2 failed")
	}
	if EvalFCmp(FOGE, F64, f(2), f(2)) != 1 {
		t.Fatal("2 >= 2 failed")
	}
	nan := FloatToBits(F64, math.NaN())
	for _, p := range []Pred{FOEQ, FONE, FOLT, FOLE, FOGT, FOGE} {
		if EvalFCmp(p, F64, nan, f(1)) != 0 {
			t.Fatalf("ordered %s with NaN returned true", p)
		}
	}
}

func TestEvalCast(t *testing.T) {
	if EvalCast(OpZExt, I8, I32, 0xff) != 0xff {
		t.Fatal("zext")
	}
	if EvalCast(OpSExt, I8, I32, 0xff) != 0xffffffff {
		t.Fatal("sext")
	}
	if EvalCast(OpTrunc, I32, I8, 0x1234) != 0x34 {
		t.Fatal("trunc")
	}
	if got := FloatFromBits(F64, EvalCast(OpSIToFP, I32, F64, uint64(uint32(0xfffffffb)))); got != -5.0 {
		t.Fatalf("sitofp = %g", got)
	}
	if got := EvalCast(OpFPToSI, F64, I32, FloatToBits(F64, -7.9)); SignExt(I32, got) != -7 {
		t.Fatalf("fptosi = %d", SignExt(I32, got))
	}
	if got := FloatFromBits(F32, EvalCast(OpFPTrunc, F64, F32, FloatToBits(F64, 1.5))); got != 1.5 {
		t.Fatalf("fptrunc = %g", got)
	}
	if got := FloatFromBits(F64, EvalCast(OpFPExt, F32, F64, FloatToBits(F32, 2.25))); got != 2.25 {
		t.Fatalf("fpext = %g", got)
	}
	if EvalCast(OpBitcast, I64, F64, 42) != 42 {
		t.Fatal("bitcast should be identity on bits")
	}
}

func TestEvalCallIntrinsics(t *testing.T) {
	f := func(v float64) uint64 { return FloatToBits(F64, v) }
	if got := FloatFromBits(F64, EvalCall("sqrt", F64, []uint64{f(9)})); got != 3 {
		t.Fatalf("sqrt = %g", got)
	}
	if got := FloatFromBits(F64, EvalCall("fabs", F64, []uint64{f(-2)})); got != 2 {
		t.Fatalf("fabs = %g", got)
	}
	if got := FloatFromBits(F64, EvalCall("fmin", F64, []uint64{f(2), f(3)})); got != 2 {
		t.Fatalf("fmin = %g", got)
	}
	if got := FloatFromBits(F64, EvalCall("fmax", F64, []uint64{f(2), f(3)})); got != 3 {
		t.Fatalf("fmax = %g", got)
	}
	if got := SignExt(I32, EvalCall("abs", I32, []uint64{uint64(uint32(0xfffffffe))})); got != 2 {
		t.Fatalf("abs = %d", got)
	}
	if got := SignExt(I32, EvalCall("smin", I32, []uint64{5, uint64(uint32(0xffffffff))})); got != -1 {
		t.Fatalf("smin = %d", got)
	}
	if got := SignExt(I32, EvalCall("smax", I32, []uint64{5, 3})); got != 5 {
		t.Fatalf("smax = %d", got)
	}
}

// Property: signed comparison semantics match Go int64 comparison after
// sign extension, for random widths and values.
func TestICmpMatchesGoProperty(t *testing.T) {
	prop := func(a, b uint64, w8 uint8) bool {
		widths := []Type{I8, I16, I32, I64}
		typ := widths[int(w8)%len(widths)]
		sa, sb := SignExt(typ, a), SignExt(typ, b)
		want := uint64(0)
		if sa < sb {
			want = 1
		}
		return EvalICmp(ISLT, typ, a, b) == want
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: add/sub round-trip (a+b)-b == a (mod 2^w).
func TestAddSubInverseProperty(t *testing.T) {
	prop := func(a, b uint64) bool {
		sum := EvalBin(OpAdd, I32, a, b)
		back := EvalBin(OpSub, I32, sum, b)
		return back == MaskInt(I32, a)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEvalGEP(t *testing.T) {
	m := NewModule("t")
	b := NewBuilder(m)
	arr := P("a", Ptr(Arr(10, F64)))
	f := b.Func("g", Void, arr, P("i", I64), P("j", I64))
	gep := b.GEP(arr, "p", f.Params[1], f.Params[2])
	b.Ret(nil)
	// a[i][j] = base + i*80 + j*8
	addr := EvalGEP(gep, 1000, []uint64{2, 3})
	if addr != 1000+2*80+3*8 {
		t.Fatalf("gep addr = %d", addr)
	}
	// Negative index.
	addr = EvalGEP(gep, 1000, []uint64{^uint64(0), 0}) // i = -1
	if addr != 1000-80 {
		t.Fatalf("gep negative addr = %d", addr)
	}
}
