package ir

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestPrintParseRoundTripDot(t *testing.T) {
	m, _ := buildDot(t, 2)
	text := Print(m)
	m2, err := Parse("dot2", text)
	if err != nil {
		t.Fatalf("parse:\n%s\nerror: %v", text, err)
	}
	f2 := m2.Func("dot")
	if f2 == nil {
		t.Fatal("function lost in round trip")
	}
	if err := Verify(f2); err != nil {
		t.Fatalf("verify reparsed: %v", err)
	}
	// Same semantics after round trip.
	got := runDot(t, f2, 8)
	if got != 72 {
		t.Fatalf("reparsed dot = %g, want 72", got)
	}
	// Printing again is a fixed point.
	text2 := Print(m2)
	if normalize(text) != normalize(text2) {
		t.Fatalf("print not idempotent:\n--- first\n%s\n--- second\n%s", text, text2)
	}
}

func normalize(s string) string {
	// Module name comment differs; drop comment lines.
	var out []string
	for _, l := range strings.Split(s, "\n") {
		if strings.HasPrefix(strings.TrimSpace(l), ";") {
			continue
		}
		out = append(out, l)
	}
	return strings.Join(out, "\n")
}

func TestParseHandlesCommentsAndWhitespace(t *testing.T) {
	src := `
; leading comment
define i64 @f(i64 %x) {
entry:
	%y = add i64 %x, 1   ; trailing comment

	ret i64 %y
}
`
	m, err := Parse("c", src)
	if err != nil {
		t.Fatal(err)
	}
	f := m.Func("f")
	mem := NewFlatMem(0, 8)
	ret, _, err := Exec(f, []uint64{41}, mem, nil)
	if err != nil || ret != 42 {
		t.Fatalf("ret = %d, err = %v", ret, err)
	}
}

func TestParseGlobalsAndCalls(t *testing.T) {
	src := `
@buf = global [4 x double]
define double @f(i64 %i) {
entry:
  %p = getelementptr [4 x double], [4 x double]* @buf, i64 0, i64 %i
  %v = load double, double* %p
  %r = call double @sqrt(double %v)
  ret double %r
}
`
	m, err := Parse("g", src)
	if err != nil {
		t.Fatal(err)
	}
	g := m.GlobalByName("buf")
	if g == nil {
		t.Fatal("global missing")
	}
	mem := NewFlatMem(0, 64)
	g.Addr = mem.AllocFor(F64, 4)
	mem.WriteF64(g.Addr+16, 9)
	ret, _, err := Exec(m.Func("f"), []uint64{2}, mem, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := FloatFromBits(F64, ret); got != 3 {
		t.Fatalf("sqrt(buf[2]) = %g", got)
	}
}

func TestParseAllConstructsRoundTrip(t *testing.T) {
	// A function exercising every opcode family.
	m := NewModule("all")
	b := NewBuilder(m)
	f := b.Func("all", F64, P("p", Ptr(F64)), P("q", Ptr(I32)), P("n", I64), P("x", F64))
	p, q, n, x := f.Params[0], f.Params[1], f.Params[2], f.Params[3]
	ni := b.Trunc(n, I32, "ni")
	nz := b.ZExt(ni, I64, "nz")
	ns := b.SExt(ni, I64, "ns")
	_ = b.Xor(nz, ns, "mix")
	fv := b.SIToFP(ni, F64, "fv")
	iv := b.FPToSI(x, I64, "iv2")
	_ = b.Shl(iv, I64c(1), "sh")
	_ = b.AShr(iv, I64c(1), "sa")
	_ = b.LShr(iv, I64c(1), "sl")
	c := b.FCmp(FOGT, x, fv, "c")
	sel := b.Select(c, x, fv, "sel")
	sq := b.Call("sqrt", F64, "sq", b.Call("fabs", F64, "ab", sel))
	sum := b.LoopCarried("i", I64c(0), n, 1, []Value{sq}, func(i Value, cv []Value) []Value {
		pv := b.Load(b.GEP(p, "pp", i), "pv")
		qv := b.Load(b.GEP(q, "qq", i), "qv")
		qf := b.SIToFP(qv, F64, "qf")
		d := b.FDiv(pv, qf, "d")
		s := b.FSub(cv[0], d, "s")
		rem := b.SRem(i, I64c(3), "rem")
		isz := b.ICmp(IEQ, rem, I64c(0), "isz")
		upd := b.IfValue(isz, "br", func() Value { return b.FMul(s, F64c(2), "s2") },
			func() Value { return s })
		b.Store(upd, b.GEP(p, "wp", i))
		return []Value{upd}
	})
	b.Ret(sum[0])
	if err := Verify(f); err != nil {
		t.Fatalf("verify: %v", err)
	}

	text := Print(m)
	m2, err := Parse("all2", text)
	if err != nil {
		t.Fatalf("parse error: %v\n%s", err, text)
	}
	f2 := m2.Func("all")
	if err := Verify(f2); err != nil {
		t.Fatalf("verify reparsed: %v", err)
	}

	// Semantics preserved: execute both on identical memory.
	run := func(fn *Function) (uint64, []byte) {
		mem := NewFlatMem(0, 4096)
		pA := mem.AllocFor(F64, 8)
		qA := mem.AllocFor(I32, 8)
		for i := 0; i < 8; i++ {
			mem.WriteF64(pA+uint64(i*8), float64(i)+0.5)
			mem.WriteI32(qA+uint64(i*4), int32(i+1))
		}
		ret, _, err := Exec(fn, []uint64{pA, qA, 8, FloatToBits(F64, -3.25)}, mem, nil)
		if err != nil {
			t.Fatal(err)
		}
		return ret, mem.Data
	}
	r1, d1 := run(f)
	r2, d2 := run(f2)
	if r1 != r2 {
		t.Fatalf("return bits differ: %#x vs %#x", r1, r2)
	}
	if string(d1) != string(d2) {
		t.Fatal("memory effects differ after round trip")
	}
}

// Property: random straight-line integer programs round-trip through
// print/parse with identical results.
func TestRoundTripProperty(t *testing.T) {
	ops := []Opcode{OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor, OpShl, OpLShr, OpAShr}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := NewModule("rnd")
		b := NewBuilder(m)
		f := b.Func("rnd", I64, P("a", I64), P("b", I64))
		vals := []Value{f.Params[0], f.Params[1], I64c(rng.Int63n(100))}
		for i := 0; i < 10+rng.Intn(20); i++ {
			op := ops[rng.Intn(len(ops))]
			x := vals[rng.Intn(len(vals))]
			y := vals[rng.Intn(len(vals))]
			vals = append(vals, b.Bin(op, x, y, "v"))
		}
		b.Ret(vals[len(vals)-1])
		if err := Verify(f); err != nil {
			return false
		}
		text := Print(m)
		m2, err := Parse("rnd2", text)
		if err != nil {
			t.Logf("parse failed: %v\n%s", err, text)
			return false
		}
		mem1 := NewFlatMem(0, 8)
		mem2 := NewFlatMem(0, 8)
		args := []uint64{rng.Uint64(), rng.Uint64()}
		r1, _, err1 := Exec(f, args, mem1, nil)
		r2, _, err2 := Exec(m2.Func("rnd"), args, mem2, nil)
		return err1 == nil && err2 == nil && r1 == r2
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"define i64 @f( {", // malformed params
		"define i64 @f() {\nentry:\n  %x = bogus i64 %a, %b\n  ret i64 %x\n}",
		"define i64 @f() {\nentry:\n  ret i64 %undefined\n}",
		"define void @f() {\nentry:\n  br label %nowhere\n}",
		"wibble",
	}
	for _, src := range cases {
		if _, err := Parse("bad", src); err == nil {
			t.Errorf("Parse succeeded on %q", src)
		}
	}
}
