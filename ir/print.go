package ir

import (
	"fmt"
	"strings"
)

// Print renders a module in the textual IR form accepted by Parse. The
// syntax is an LLVM-compatible subset: a module printed here is also valid
// (modulo intrinsic declarations) LLVM assembly.
func Print(m *Module) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "; module %s\n", m.Name)
	for _, g := range m.Globals {
		fmt.Fprintf(&sb, "@%s = global %s\n", g.GName, g.Elem)
	}
	if len(m.Globals) > 0 {
		sb.WriteByte('\n')
	}
	for i, f := range m.Funcs {
		if i > 0 {
			sb.WriteByte('\n')
		}
		PrintFunc(&sb, f)
	}
	return sb.String()
}

// PrintFunc renders one function.
func PrintFunc(sb *strings.Builder, f *Function) {
	params := make([]string, len(f.Params))
	for i, p := range f.Params {
		params[i] = fmt.Sprintf("%s %%%s", p.T, p.PName)
	}
	fmt.Fprintf(sb, "define %s @%s(%s) {\n", f.Ret, f.FName, strings.Join(params, ", "))
	for _, b := range f.Blocks {
		fmt.Fprintf(sb, "%s:\n", b.BName)
		for _, in := range b.Instrs {
			fmt.Fprintf(sb, "  %s\n", FormatInstr(in))
		}
	}
	sb.WriteString("}\n")
}

func operand(v Value) string {
	return fmt.Sprintf("%s %s", v.Type(), v.Ident())
}

// FormatInstr renders one instruction.
func FormatInstr(in *Instr) string {
	assign := ""
	if in.HasResult() {
		assign = fmt.Sprintf("%%%s = ", in.Name)
	}
	switch {
	case in.Op.IsBinOp():
		return fmt.Sprintf("%s%s %s %s, %s", assign, in.Op, in.T,
			in.Args[0].Ident(), in.Args[1].Ident())
	case in.Op == OpICmp || in.Op == OpFCmp:
		return fmt.Sprintf("%s%s %s %s %s, %s", assign, in.Op, in.Pred,
			in.Args[0].Type(), in.Args[0].Ident(), in.Args[1].Ident())
	case in.Op == OpLoad:
		return fmt.Sprintf("%sload %s, %s", assign, in.T, operand(in.Args[0]))
	case in.Op == OpStore:
		return fmt.Sprintf("store %s, %s", operand(in.Args[0]), operand(in.Args[1]))
	case in.Op == OpGEP:
		pt := in.Args[0].Type().(PtrType)
		parts := []string{fmt.Sprintf("%s, %s", pt.Elem, operand(in.Args[0]))}
		for _, idx := range in.Args[1:] {
			parts = append(parts, operand(idx))
		}
		return fmt.Sprintf("%sgetelementptr %s", assign, strings.Join(parts, ", "))
	case in.Op == OpPhi:
		var edges []string
		for k := range in.Args {
			edges = append(edges, fmt.Sprintf("[ %s, %%%s ]", in.Args[k].Ident(), in.Blocks[k].BName))
		}
		return fmt.Sprintf("%sphi %s %s", assign, in.T, strings.Join(edges, ", "))
	case in.Op == OpSelect:
		return fmt.Sprintf("%sselect %s, %s, %s", assign,
			operand(in.Args[0]), operand(in.Args[1]), operand(in.Args[2]))
	case in.Op == OpBr:
		if len(in.Blocks) == 1 {
			return fmt.Sprintf("br label %%%s", in.Blocks[0].BName)
		}
		return fmt.Sprintf("br i1 %s, label %%%s, label %%%s",
			in.Args[0].Ident(), in.Blocks[0].BName, in.Blocks[1].BName)
	case in.Op == OpRet:
		if len(in.Args) == 0 {
			return "ret void"
		}
		return fmt.Sprintf("ret %s", operand(in.Args[0]))
	case in.Op == OpCall:
		var args []string
		for _, a := range in.Args {
			args = append(args, operand(a))
		}
		return fmt.Sprintf("%scall %s @%s(%s)", assign, in.T, in.Callee, strings.Join(args, ", "))
	case in.Op.IsCast():
		return fmt.Sprintf("%s%s %s to %s", assign, in.Op, operand(in.Args[0]), in.T)
	}
	return fmt.Sprintf("%s<unknown op %d>", assign, in.Op)
}
