package ir

import (
	"fmt"
)

// Builder constructs IR imperatively, mirroring LLVM's IRBuilder. Its loop
// and if helpers play the role that clang's structured lowering plus
// pragmas (unroll factors, if-conversion) play in the original gem5-SALAM
// flow.
type Builder struct {
	M *Module
	F *Function
	B *Block

	names map[string]int
}

// NewBuilder creates a builder over a module.
func NewBuilder(m *Module) *Builder {
	return &Builder{M: m, names: map[string]int{}}
}

// Func starts a new function and positions the builder at a fresh entry
// block.
func (b *Builder) Func(name string, ret Type, params ...*Param) *Function {
	b.F = b.M.NewFunction(name, ret, params...)
	b.names = map[string]int{}
	for _, p := range params {
		b.names[p.PName]++
	}
	b.B = b.F.NewBlock("entry")
	return b.F
}

// Block creates a new block in the current function without moving to it.
func (b *Builder) Block(name string) *Block { return b.F.NewBlock(name) }

// SetBlock repositions the builder.
func (b *Builder) SetBlock(blk *Block) { b.B = blk }

// uniq returns a unique SSA name derived from base.
func (b *Builder) uniq(base string) string {
	if base == "" {
		base = "v"
	}
	n := b.names[base]
	b.names[base] = n + 1
	if n == 0 {
		return base
	}
	return fmt.Sprintf("%s%d", base, n)
}

// emit appends an instruction to the current block.
func (b *Builder) emit(i *Instr) *Instr {
	if b.B == nil {
		panic("ir: builder has no current block")
	}
	if t := b.B.Terminator(); t != nil {
		panic(fmt.Sprintf("ir: emitting %s after terminator in block %s", i.Op, b.B.BName))
	}
	b.B.append(i)
	return i
}

// Bin emits a binary op; the result type is the operand type.
func (b *Builder) Bin(op Opcode, x, y Value, name string) *Instr {
	return b.emit(&Instr{Op: op, T: x.Type(), Name: b.uniq(name), Args: []Value{x, y}})
}

// Arithmetic conveniences. Each takes an optional result-name hint.

func (b *Builder) Add(x, y Value, name string) *Instr  { return b.Bin(OpAdd, x, y, name) }
func (b *Builder) Sub(x, y Value, name string) *Instr  { return b.Bin(OpSub, x, y, name) }
func (b *Builder) Mul(x, y Value, name string) *Instr  { return b.Bin(OpMul, x, y, name) }
func (b *Builder) SDiv(x, y Value, name string) *Instr { return b.Bin(OpSDiv, x, y, name) }
func (b *Builder) UDiv(x, y Value, name string) *Instr { return b.Bin(OpUDiv, x, y, name) }
func (b *Builder) SRem(x, y Value, name string) *Instr { return b.Bin(OpSRem, x, y, name) }
func (b *Builder) URem(x, y Value, name string) *Instr { return b.Bin(OpURem, x, y, name) }
func (b *Builder) And(x, y Value, name string) *Instr  { return b.Bin(OpAnd, x, y, name) }
func (b *Builder) Or(x, y Value, name string) *Instr   { return b.Bin(OpOr, x, y, name) }
func (b *Builder) Xor(x, y Value, name string) *Instr  { return b.Bin(OpXor, x, y, name) }
func (b *Builder) Shl(x, y Value, name string) *Instr  { return b.Bin(OpShl, x, y, name) }
func (b *Builder) LShr(x, y Value, name string) *Instr { return b.Bin(OpLShr, x, y, name) }
func (b *Builder) AShr(x, y Value, name string) *Instr { return b.Bin(OpAShr, x, y, name) }
func (b *Builder) FAdd(x, y Value, name string) *Instr { return b.Bin(OpFAdd, x, y, name) }
func (b *Builder) FSub(x, y Value, name string) *Instr { return b.Bin(OpFSub, x, y, name) }
func (b *Builder) FMul(x, y Value, name string) *Instr { return b.Bin(OpFMul, x, y, name) }
func (b *Builder) FDiv(x, y Value, name string) *Instr { return b.Bin(OpFDiv, x, y, name) }

// ICmp emits an integer comparison producing i1.
func (b *Builder) ICmp(p Pred, x, y Value, name string) *Instr {
	return b.emit(&Instr{Op: OpICmp, T: I1, Name: b.uniq(name), Pred: p, Args: []Value{x, y}})
}

// FCmp emits a float comparison producing i1.
func (b *Builder) FCmp(p Pred, x, y Value, name string) *Instr {
	return b.emit(&Instr{Op: OpFCmp, T: I1, Name: b.uniq(name), Pred: p, Args: []Value{x, y}})
}

// Load reads through a pointer.
func (b *Builder) Load(ptr Value, name string) *Instr {
	pt, ok := ptr.Type().(PtrType)
	if !ok {
		panic("ir: load from non-pointer")
	}
	return b.emit(&Instr{Op: OpLoad, T: pt.Elem, Name: b.uniq(name), Args: []Value{ptr}})
}

// Store writes through a pointer.
func (b *Builder) Store(val, ptr Value) *Instr {
	return b.emit(&Instr{Op: OpStore, T: Void, Name: b.uniq("st"), Args: []Value{val, ptr}})
}

// GEP computes an element address.
func (b *Builder) GEP(ptr Value, name string, idxs ...Value) *Instr {
	pt, ok := ptr.Type().(PtrType)
	if !ok {
		panic("ir: gep on non-pointer")
	}
	res := Ptr(GEPResultElem(pt, len(idxs)))
	args := append([]Value{ptr}, idxs...)
	return b.emit(&Instr{Op: OpGEP, T: res, Name: b.uniq(name), Args: args})
}

// Phi emits a phi node; incoming edges are added with AddIncoming or
// supplied as (value, block) pairs via PhiIn.
func (b *Builder) Phi(t Type, name string) *Instr {
	return b.emit(&Instr{Op: OpPhi, T: t, Name: b.uniq(name)})
}

// AddIncoming appends an incoming (value, predecessor) edge to a phi.
func AddIncoming(phi *Instr, v Value, from *Block) {
	if phi.Op != OpPhi {
		panic("ir: AddIncoming on non-phi")
	}
	phi.Args = append(phi.Args, v)
	phi.Blocks = append(phi.Blocks, from)
}

// Select emits cond ? x : y.
func (b *Builder) Select(cond, x, y Value, name string) *Instr {
	return b.emit(&Instr{Op: OpSelect, T: x.Type(), Name: b.uniq(name), Args: []Value{cond, x, y}})
}

// Br emits an unconditional branch and leaves the block terminated.
func (b *Builder) Br(dst *Block) *Instr {
	return b.emit(&Instr{Op: OpBr, T: Void, Name: b.uniq("br"), Blocks: []*Block{dst}})
}

// CondBr emits a conditional branch.
func (b *Builder) CondBr(cond Value, then, els *Block) *Instr {
	return b.emit(&Instr{Op: OpBr, T: Void, Name: b.uniq("br"), Args: []Value{cond}, Blocks: []*Block{then, els}})
}

// Ret emits a return; v may be nil for void functions.
func (b *Builder) Ret(v Value) *Instr {
	i := &Instr{Op: OpRet, T: Void, Name: b.uniq("ret")}
	if v != nil {
		i.Args = []Value{v}
	}
	return b.emit(i)
}

// Call emits an intrinsic call.
func (b *Builder) Call(callee string, t Type, name string, args ...Value) *Instr {
	return b.emit(&Instr{Op: OpCall, T: t, Name: b.uniq(name), Callee: callee, Args: args})
}

// Cast emits a conversion to type t.
func (b *Builder) Cast(op Opcode, v Value, t Type, name string) *Instr {
	return b.emit(&Instr{Op: op, T: t, Name: b.uniq(name), Args: []Value{v}})
}

func (b *Builder) ZExt(v Value, t Type, name string) *Instr  { return b.Cast(OpZExt, v, t, name) }
func (b *Builder) SExt(v Value, t Type, name string) *Instr  { return b.Cast(OpSExt, v, t, name) }
func (b *Builder) Trunc(v Value, t Type, name string) *Instr { return b.Cast(OpTrunc, v, t, name) }
func (b *Builder) SIToFP(v Value, t Type, name string) *Instr {
	return b.Cast(OpSIToFP, v, t, name)
}
func (b *Builder) FPToSI(v Value, t Type, name string) *Instr {
	return b.Cast(OpFPToSI, v, t, name)
}

// Loop builds a canonical counted loop:
//
//	for (iv = lo; iv < hi; iv += step) body(iv)
//
// and leaves the builder at the exit block. lo and hi must share an integer
// type.
func (b *Builder) Loop(name string, lo, hi Value, step int64, body func(iv Value)) {
	b.LoopCarried(name, lo, hi, step, nil, func(iv Value, _ []Value) []Value {
		body(iv)
		return nil
	})
}

// LoopCarried builds a counted loop with loop-carried values (reduction
// phis). init supplies the entry values; body receives the current carried
// values and returns the next-iteration values. The final values are
// returned, valid in the exit block.
func (b *Builder) LoopCarried(name string, lo, hi Value, step int64,
	init []Value, body func(iv Value, carried []Value) []Value) []Value {
	return b.loopImpl(name, lo, hi, step, 1, init, body)
}

// LoopUnrolled is Loop with the body replicated `factor` times per
// iteration (clang's "#pragma unroll factor"). The trip count should be
// divisible by factor; a remainder would be skipped.
func (b *Builder) LoopUnrolled(name string, lo, hi Value, step int64, factor int, body func(iv Value)) {
	b.LoopCarriedUnrolled(name, lo, hi, step, factor, nil, func(iv Value, _ []Value) []Value {
		body(iv)
		return nil
	})
}

// LoopCarriedUnrolled combines LoopCarried and LoopUnrolled.
func (b *Builder) LoopCarriedUnrolled(name string, lo, hi Value, step int64, factor int,
	init []Value, body func(iv Value, carried []Value) []Value) []Value {
	return b.loopImpl(name, lo, hi, step, factor, init, body)
}

func (b *Builder) loopImpl(name string, lo, hi Value, step int64, factor int,
	init []Value, body func(iv Value, carried []Value) []Value) []Value {
	if factor < 1 {
		panic("ir: unroll factor must be >= 1")
	}
	ivType := lo.Type()
	header := b.Block(name + ".head")
	bodyBlk := b.Block(name + ".body")
	exit := b.Block(name + ".exit")

	pre := b.B
	b.Br(header)

	// Header: iv phi, carried phis, bounds check.
	b.SetBlock(header)
	iv := b.Phi(ivType, name+".iv")
	AddIncoming(iv, lo, pre)
	carried := make([]Value, len(init))
	phis := make([]*Instr, len(init))
	for k, v := range init {
		phis[k] = b.Phi(v.Type(), name+".carry")
		AddIncoming(phis[k], v, pre)
		carried[k] = phis[k]
	}
	cond := b.ICmp(ISLT, iv, hi, name+".cond")
	b.CondBr(cond, bodyBlk, exit)

	// Body (+latch): factor copies, then iv advance and back edge.
	b.SetBlock(bodyBlk)
	cur := carried
	for k := 0; k < factor; k++ {
		ivK := Value(iv)
		if k > 0 {
			ivK = b.Add(iv, IC(ivType, int64(k)*step), name+".iv.u")
		}
		cur = body(ivK, cur)
		if len(cur) != len(init) {
			panic("ir: loop body returned wrong carried count")
		}
	}
	next := b.Add(iv, IC(ivType, step*int64(factor)), name+".iv.next")
	latch := b.B
	b.Br(header)
	AddIncoming(iv, next, latch)
	for k, phi := range phis {
		AddIncoming(phi, cur[k], latch)
	}

	b.SetBlock(exit)
	out := make([]Value, len(phis))
	for k, phi := range phis {
		out[k] = phi
	}
	return out
}

// If builds a one-armed conditional: then() runs when cond is true, and the
// builder continues at the merge block.
func (b *Builder) If(cond Value, name string, then func()) {
	thenBlk := b.Block(name + ".then")
	merge := b.Block(name + ".end")
	b.CondBr(cond, thenBlk, merge)
	b.SetBlock(thenBlk)
	then()
	b.Br(merge)
	b.SetBlock(merge)
}

// IfElse builds a two-armed conditional.
func (b *Builder) IfElse(cond Value, name string, then, els func()) {
	thenBlk := b.Block(name + ".then")
	elseBlk := b.Block(name + ".else")
	merge := b.Block(name + ".end")
	b.CondBr(cond, thenBlk, elseBlk)
	b.SetBlock(thenBlk)
	then()
	b.Br(merge)
	b.SetBlock(elseBlk)
	els()
	b.Br(merge)
	b.SetBlock(merge)
}

// IfValue builds a diamond returning a merged value via phi.
func (b *Builder) IfValue(cond Value, name string, then, els func() Value) Value {
	thenBlk := b.Block(name + ".then")
	elseBlk := b.Block(name + ".else")
	merge := b.Block(name + ".end")
	b.CondBr(cond, thenBlk, elseBlk)

	b.SetBlock(thenBlk)
	tv := then()
	tEnd := b.B
	b.Br(merge)

	b.SetBlock(elseBlk)
	ev := els()
	eEnd := b.B
	b.Br(merge)

	b.SetBlock(merge)
	phi := b.Phi(tv.Type(), name+".phi")
	AddIncoming(phi, tv, tEnd)
	AddIncoming(phi, ev, eEnd)
	return phi
}
