package ir

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzParseLL drives arbitrary bytes through the tokenizer and parser,
// then verifies and prints whatever parses. The contract production
// ingestion relies on: malformed input is an error with a position, never
// a panic or an infinite loop, and anything that parses is safe to feed
// to Verify and Print.
func FuzzParseLL(f *testing.F) {
	f.Add(clangDot)
	f.Add("define i64 @id(i64 %x) {\nentry:\n  ret i64 %x\n}\n")
	f.Add("@g = global [4 x double]\n")
	f.Add("source_filename = \"a;b.c\"\nattributes #0 = { \"k\"=\"v\" }\n!0 = !{!\"x\"}\n")
	f.Add("define void @s(double* %p) {\nentry:\n  store double 0x3FB999999999999A, double* %p, align 8\n  ret void\n}\n")
	// Seed with the shipped clang-style fixtures when run from the repo.
	if paths, err := filepath.Glob("../testdata/ll/*.ll"); err == nil {
		for _, p := range paths {
			if b, err := os.ReadFile(p); err == nil {
				f.Add(string(b))
			}
		}
	}
	f.Fuzz(func(t *testing.T, src string) {
		m, err := Parse("fuzz", src)
		if err != nil {
			return
		}
		for _, fn := range m.Funcs {
			_ = Verify(fn)
		}
		_ = Print(m)
	})
}
