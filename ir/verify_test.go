package ir

import (
	"strings"
	"testing"
)

// TestVerifyCollectsAllErrors: a function with three independent defects
// must report all three in one Verify call, not one per fix-rerun cycle.
func TestVerifyCollectsAllErrors(t *testing.T) {
	m := NewModule("multi")
	f := m.NewFunction("f", Void, P("x", I64), P("y", I32))
	b := f.NewBlock("entry")
	// Defect 1: binop operand type mismatch.
	b.Instrs = append(b.Instrs, &Instr{Op: OpAdd, T: I64, Name: "bad.add",
		Args: []Value{f.Params[0], f.Params[1]}})
	// Defect 2: FP opcode on an integer type.
	b.Instrs = append(b.Instrs, &Instr{Op: OpFAdd, T: I64, Name: "bad.fadd",
		Args: []Value{f.Params[0], f.Params[0]}})
	// Defect 3: unknown intrinsic.
	b.Instrs = append(b.Instrs, &Instr{Op: OpCall, T: I64, Name: "bad.call",
		Callee: "frobnicate", Args: []Value{f.Params[0]}})
	b.Instrs = append(b.Instrs, &Instr{Op: OpRet, T: Void, Name: "r"})

	err := Verify(f)
	if err == nil {
		t.Fatal("broken function verified")
	}
	for _, want := range []string{"bad.add", "bad.fadd", "bad.call"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined error missing defect %%%s:\n%v", want, err)
		}
	}
}

// TestVerifyCollectsAcrossBlocks: defects in different blocks (including a
// missing terminator, which used to stop verification of the whole
// function) are all reported.
func TestVerifyCollectsAcrossBlocks(t *testing.T) {
	m := NewModule("blocks")
	f := m.NewFunction("f", Void, P("x", I64))
	b1 := f.NewBlock("entry")
	f.NewBlock("open") // no terminator
	b3 := f.NewBlock("tail")
	b1.Instrs = append(b1.Instrs, &Instr{Op: OpBr, T: Void, Name: "", Blocks: []*Block{b3}})
	b3.Instrs = append(b3.Instrs,
		&Instr{Op: OpFAdd, T: I64, Name: "bad", Args: []Value{f.Params[0], f.Params[0]}},
		&Instr{Op: OpRet, T: Void, Name: "r"})

	err := Verify(f)
	if err == nil {
		t.Fatal("broken function verified")
	}
	if !strings.Contains(err.Error(), "missing terminator") {
		t.Errorf("missing-terminator defect not reported:\n%v", err)
	}
	if !strings.Contains(err.Error(), "bad") {
		t.Errorf("defect in a later block not reported:\n%v", err)
	}
}

// TestVerifyPhiNonPredecessor: a phi listing an incoming edge from a block
// that is not a CFG predecessor must be rejected by name.
func TestVerifyPhiNonPredecessor(t *testing.T) {
	m := NewModule("phi")
	f := m.NewFunction("f", Void, P("x", I64))
	entry := f.NewBlock("entry")
	merge := f.NewBlock("merge")
	stray := f.NewBlock("stray") // never branches to merge
	entry.Instrs = append(entry.Instrs, &Instr{Op: OpBr, T: Void, Blocks: []*Block{merge}})
	stray.Instrs = append(stray.Instrs, &Instr{Op: OpRet, T: Void, Name: "r0"})
	merge.Instrs = append(merge.Instrs,
		&Instr{Op: OpPhi, T: I64, Name: "p",
			Args:   []Value{f.Params[0], f.Params[0]},
			Blocks: []*Block{entry, stray}},
		&Instr{Op: OpRet, T: Void, Name: "r"})

	err := Verify(f)
	if err == nil {
		t.Fatal("phi from non-predecessor verified")
	}
	if !strings.Contains(err.Error(), "non-predecessor") {
		t.Errorf("error does not name the non-predecessor defect:\n%v", err)
	}
}

// TestVerifyMalformedArgCounts: truncated instructions must produce
// errors, not index panics, so error collection can continue past them.
func TestVerifyMalformedArgCounts(t *testing.T) {
	mk := func(in *Instr) error {
		m := NewModule("argc")
		f := m.NewFunction("f", Void, P("x", I64))
		b := f.NewBlock("entry")
		b.Instrs = append(b.Instrs, in, &Instr{Op: OpRet, T: Void, Name: "r"})
		return Verify(f)
	}
	cases := []*Instr{
		{Op: OpICmp, T: I1, Name: "c", Pred: IEQ},
		{Op: OpFCmp, T: I1, Name: "c", Pred: FOEQ},
		{Op: OpLoad, T: I64, Name: "l"},
		{Op: OpStore, T: Void, Name: ""},
		{Op: OpGEP, T: Ptr(I64), Name: "g"},
	}
	for _, in := range cases {
		if err := mk(in); err == nil {
			t.Errorf("%s with no operands verified", in.Op)
		}
	}
}
