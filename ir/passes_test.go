package ir

import (
	"testing"
)

func TestConstFold(t *testing.T) {
	m := NewModule("cf")
	b := NewBuilder(m)
	f := b.Func("f", I64, P("x", I64))
	c := b.Add(I64c(2), I64c(3), "c") // foldable
	d := b.Mul(c, I64c(4), "d")       // foldable after c
	e := b.Add(f.Params[0], d, "e")   // not foldable
	b.Ret(e)
	n := ConstFold(f)
	if n != 2 {
		t.Fatalf("folded %d, want 2", n)
	}
	DCE(f)
	if got := f.NumInstrs(); got != 2 { // add + ret
		t.Fatalf("instrs after fold+dce = %d, want 2", got)
	}
	mem := NewFlatMem(0, 8)
	ret, _, err := Exec(f, []uint64{1}, mem, nil)
	if err != nil || ret != 21 {
		t.Fatalf("ret = %d, err %v", ret, err)
	}
}

func TestConstFoldSelectAndCmp(t *testing.T) {
	m := NewModule("cf2")
	b := NewBuilder(m)
	f := b.Func("f", I64, P("x", I64))
	c := b.ICmp(ISLT, I64c(1), I64c(2), "c")
	s := b.Select(c, I64c(10), I64c(20), "s")
	b.Ret(b.Add(f.Params[0], s, "r"))
	ConstFold(f)
	DCE(f)
	mem := NewFlatMem(0, 8)
	ret, _, _ := Exec(f, []uint64{5}, mem, nil)
	if ret != 15 {
		t.Fatalf("ret = %d, want 15", ret)
	}
	if f.NumInstrs() != 2 {
		t.Fatalf("instrs = %d, want 2", f.NumInstrs())
	}
}

func TestDCERemovesUnusedChains(t *testing.T) {
	m := NewModule("dce")
	b := NewBuilder(m)
	f := b.Func("f", Void, P("p", Ptr(I64)))
	v := b.Load(f.Params[0], "v")
	_ = b.Add(v, I64c(1), "dead1") // dead; keeps v alive until removed
	b.Ret(nil)
	removed := DCE(f)
	if removed != 2 { // dead1 then v
		t.Fatalf("removed %d, want 2", removed)
	}
	if f.NumInstrs() != 1 {
		t.Fatalf("instrs = %d, want 1 (ret)", f.NumInstrs())
	}
}

func TestDCEKeepsStores(t *testing.T) {
	m := NewModule("dce2")
	b := NewBuilder(m)
	f := b.Func("f", Void, P("p", Ptr(I64)))
	b.Store(I64c(7), f.Params[0])
	b.Ret(nil)
	if DCE(f) != 0 {
		t.Fatal("DCE removed a store")
	}
}

func TestFindLoops(t *testing.T) {
	_, f := buildDot(t, 1)
	loops := FindLoops(f)
	if len(loops) != 1 {
		t.Fatalf("found %d loops, want 1", len(loops))
	}
	l := loops[0]
	if l.Header.BName != "i.head" || l.Body.BName != "i.body" {
		t.Fatalf("loop blocks: %s / %s", l.Header.BName, l.Body.BName)
	}
	if _, ok := l.TripCount(); ok {
		t.Fatal("trip count should be unknown (bound is a parameter)")
	}
}

func TestUnrollPass(t *testing.T) {
	// Constant-bound dot product, trip count 8, unroll by 4.
	build := func() (*Module, *Function) {
		m := NewModule("d")
		b := NewBuilder(m)
		f := b.Func("dot", F64, P("a", Ptr(F64)), P("b", Ptr(F64)))
		a, bp := f.Params[0], f.Params[1]
		sum := b.LoopCarried("i", I64c(0), I64c(8), 1, []Value{F64c(0)},
			func(iv Value, cv []Value) []Value {
				av := b.Load(b.GEP(a, "pa", iv), "va")
				bv := b.Load(b.GEP(bp, "pb", iv), "vb")
				return []Value{b.FAdd(cv[0], b.FMul(av, bv, "m"), "acc")}
			})
		b.Ret(sum[0])
		return m, f
	}
	_, f := build()
	loops := FindLoops(f)
	if len(loops) != 1 {
		t.Fatalf("loops = %d", len(loops))
	}
	tc, ok := loops[0].TripCount()
	if !ok || tc != 8 {
		t.Fatalf("trip count = %d, %v", tc, ok)
	}
	if err := Unroll(f, loops[0], 4); err != nil {
		t.Fatal(err)
	}
	if err := Verify(f); err != nil {
		t.Fatalf("verify after unroll: %v", err)
	}
	// 4 fmuls in the body now.
	fmuls := 0
	for _, in := range loops[0].Body.Instrs {
		if in.Op == OpFMul {
			fmuls++
		}
	}
	if fmuls != 4 {
		t.Fatalf("fmuls = %d, want 4", fmuls)
	}

	// Same answer as the original.
	run := func(fn *Function) float64 {
		mem := NewFlatMem(0, 4096)
		aA := mem.AllocFor(F64, 8)
		bA := mem.AllocFor(F64, 8)
		for i := 0; i < 8; i++ {
			mem.WriteF64(aA+uint64(i*8), float64(i+1))
			mem.WriteF64(bA+uint64(i*8), float64(i+1))
		}
		ret, _, err := Exec(fn, []uint64{aA, bA}, mem, nil)
		if err != nil {
			t.Fatal(err)
		}
		return FloatFromBits(F64, ret)
	}
	_, orig := build()
	if got, want := run(f), run(orig); got != want {
		t.Fatalf("unrolled = %g, want %g", got, want)
	}
	// Iteration count shrank: body visited 2x instead of 8x.
	mem := NewFlatMem(0, 4096)
	mem.AllocFor(F64, 16)
	_, stats, err := Exec(f, []uint64{0, 64}, mem, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v := stats.BlockVisits[loops[0].Body]; v != 2 {
		t.Fatalf("body visits = %d, want 2", v)
	}
}

func TestUnrollRejectsIndivisible(t *testing.T) {
	m := NewModule("d")
	b := NewBuilder(m)
	f := b.Func("f", Void, P("p", Ptr(I64)))
	b.Loop("i", I64c(0), I64c(7), 1, func(iv Value) {
		b.Store(iv, b.GEP(f.Params[0], "pp", iv))
	})
	b.Ret(nil)
	loops := FindLoops(f)
	if len(loops) != 1 {
		t.Fatalf("loops = %d", len(loops))
	}
	if err := Unroll(f, loops[0], 2); err == nil {
		t.Fatal("unroll of trip count 7 by 2 succeeded")
	}
}

func TestVerifyCatchesBrokenIR(t *testing.T) {
	// Unterminated block.
	m := NewModule("v")
	f := m.NewFunction("f", Void)
	f.NewBlock("entry")
	if err := Verify(f); err == nil {
		t.Fatal("missing terminator not caught")
	}

	// Type mismatch in binop.
	m2 := NewModule("v2")
	f2 := m2.NewFunction("f", Void, P("x", I64), P("y", I32))
	b2 := f2.NewBlock("entry")
	bad := &Instr{Op: OpAdd, T: I64, Name: "z", Args: []Value{f2.Params[0], f2.Params[1]}}
	b2.Instrs = append(b2.Instrs, bad)
	retI := &Instr{Op: OpRet, T: Void, Name: "r"}
	b2.Instrs = append(b2.Instrs, retI)
	if err := Verify(f2); err == nil {
		t.Fatal("binop type mismatch not caught")
	}

	// FP opcode on int type.
	m3 := NewModule("v3")
	b3 := NewBuilder(m3)
	f3 := b3.Func("f", Void, P("x", I64))
	in := &Instr{Op: OpFAdd, T: I64, Name: "z", Args: []Value{f3.Params[0], f3.Params[0]}}
	f3.Blocks[0].Instrs = append(f3.Blocks[0].Instrs, in)
	b3.Ret(nil)
	if err := Verify(f3); err == nil {
		t.Fatal("fadd on i64 not caught")
	}

	// Unknown intrinsic.
	m4 := NewModule("v4")
	b4 := NewBuilder(m4)
	f4 := b4.Func("f", F64, P("x", F64))
	c := b4.Call("frobnicate", F64, "c", f4.Params[0])
	b4.Ret(c)
	if err := Verify(f4); err == nil {
		t.Fatal("unknown intrinsic not caught")
	}
}

func TestCSE(t *testing.T) {
	m := NewModule("cse")
	b := NewBuilder(m)
	f := b.Func("f", F64, P("p", Ptr(F64)), P("i", I64))
	p, i := f.Params[0], f.Params[1]
	// Two identical GEPs and two identical fmuls; loads must NOT merge.
	g1 := b.GEP(p, "g1", i)
	g2 := b.GEP(p, "g2", i)
	v1 := b.Load(g1, "v1")
	v2 := b.Load(g2, "v2")
	m1 := b.FMul(v1, F64c(2), "m1")
	m2 := b.FMul(v1, F64c(2), "m2")
	b.Ret(b.FAdd(b.FAdd(m1, m2, "s1"), v2, "s2"))
	if err := Verify(f); err != nil {
		t.Fatal(err)
	}
	removed := CSE(f)
	if removed != 2 { // g2 and m2
		t.Fatalf("CSE removed %d, want 2", removed)
	}
	if err := Verify(f); err != nil {
		t.Fatalf("verify after CSE: %v", err)
	}
	loads := 0
	for _, blk := range f.Blocks {
		for _, in := range blk.Instrs {
			if in.Op == OpLoad {
				loads++
			}
		}
	}
	if loads != 2 {
		t.Fatalf("CSE merged loads: %d left, want 2", loads)
	}
	// Semantics preserved.
	mem := NewFlatMem(0, 64)
	mem.WriteF64(0, 3)
	ret, _, err := Exec(f, []uint64{0, 0}, mem, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := FloatFromBits(F64, ret); got != 15 { // 6+6+3
		t.Fatalf("ret = %g, want 15", got)
	}
}

func TestCSEDistinguishesOps(t *testing.T) {
	m := NewModule("cse2")
	b := NewBuilder(m)
	f := b.Func("f", I64, P("x", I64))
	x := f.Params[0]
	a := b.Add(x, I64c(1), "a")
	s := b.Sub(x, I64c(1), "s") // different op
	c1 := b.ICmp(ISLT, x, I64c(5), "c1")
	c2 := b.ICmp(ISGT, x, I64c(5), "c2") // different predicate
	sel := b.Select(c1, a, s, "sel")
	sel2 := b.Select(c2, a, s, "sel2")
	b.Ret(b.Add(sel, sel2, "r"))
	if CSE(f) != 0 {
		t.Fatal("CSE merged distinct computations")
	}
	// Optimize pipeline keeps semantics.
	Optimize(f)
	mem := NewFlatMem(0, 8)
	ret, _, err := Exec(f, []uint64{3}, mem, nil)
	if err != nil {
		t.Fatal(err)
	}
	if int64(ret) != 4+2 { // sel=a=4 (3<5), sel2=s=2 (!(3>5))
		t.Fatalf("ret = %d", int64(ret))
	}
}
