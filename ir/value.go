package ir

import (
	"fmt"
	"math"
	"strconv"
)

// Value is anything usable as an instruction operand: constants, function
// parameters, globals, and instruction results.
type Value interface {
	Type() Type
	// Ident is the value as it appears as an operand in the text form
	// ("%i", "@buf", "42", "0x1p+2").
	Ident() string
}

// ConstInt is an integer constant. V holds the value sign-extended to 64
// bits; Bits() of the type governs its width.
type ConstInt struct {
	T Type
	V int64
}

func (c *ConstInt) Type() Type { return c.T }
func (c *ConstInt) Ident() string {
	if Equal(c.T, I1) {
		if c.V != 0 {
			return "true"
		}
		return "false"
	}
	return strconv.FormatInt(c.V, 10)
}

// Bits returns the constant in the runtime bit representation (masked to
// the type width).
func (c *ConstInt) Bits() uint64 { return MaskInt(c.T, uint64(c.V)) }

// ConstFloat is a floating-point constant.
type ConstFloat struct {
	T Type
	V float64
}

func (c *ConstFloat) Type() Type { return c.T }
func (c *ConstFloat) Ident() string {
	// Hex float form round-trips exactly.
	return strconv.FormatFloat(c.V, 'x', -1, 64)
}

// Bits returns the runtime bit representation.
func (c *ConstFloat) Bits() uint64 {
	if c.T.Bits() == 32 {
		return uint64(math.Float32bits(float32(c.V)))
	}
	return math.Float64bits(c.V)
}

// Param is a function parameter.
type Param struct {
	PName string
	T     Type
	Index int
}

func (p *Param) Type() Type    { return p.T }
func (p *Param) Ident() string { return "%" + p.PName }

// Global is a module-level buffer. Its value is its address, assigned by a
// Layout before execution.
type Global struct {
	GName string
	Elem  Type
	Addr  uint64
}

func (g *Global) Type() Type    { return Ptr(g.Elem) }
func (g *Global) Ident() string { return "@" + g.GName }

// Convenience constant constructors.

// IC builds an integer constant of the given type.
func IC(t Type, v int64) *ConstInt { return &ConstInt{T: t, V: v} }

// I64c builds an i64 constant.
func I64c(v int64) *ConstInt { return IC(I64, v) }

// I32c builds an i32 constant.
func I32c(v int64) *ConstInt { return IC(I32, v) }

// I1c builds a boolean constant.
func I1c(b bool) *ConstInt {
	if b {
		return IC(I1, 1)
	}
	return IC(I1, 0)
}

// FC builds a float constant of the given type.
func FC(t Type, v float64) *ConstFloat { return &ConstFloat{T: t, V: v} }

// F64c builds a double constant.
func F64c(v float64) *ConstFloat { return FC(F64, v) }

// F32c builds a float constant.
func F32c(v float64) *ConstFloat { return FC(F32, v) }

// MaskInt truncates bits to the width of integer type t.
func MaskInt(t Type, v uint64) uint64 {
	w := t.Bits()
	if w >= 64 {
		return v
	}
	return v & ((1 << uint(w)) - 1)
}

// SignExt sign-extends the masked value of integer type t to int64.
func SignExt(t Type, v uint64) int64 {
	w := uint(t.Bits())
	if w >= 64 {
		return int64(v)
	}
	v = MaskInt(t, v)
	sign := uint64(1) << (w - 1)
	if v&sign != 0 {
		return int64(v | ^((1 << w) - 1))
	}
	return int64(v)
}

// IsConst reports whether v is a constant value.
func IsConst(v Value) bool {
	switch v.(type) {
	case *ConstInt, *ConstFloat:
		return true
	}
	return false
}

// ConstBits returns the runtime bits of a constant value.
func ConstBits(v Value) (uint64, bool) {
	switch c := v.(type) {
	case *ConstInt:
		return c.Bits(), true
	case *ConstFloat:
		return c.Bits(), true
	}
	return 0, false
}

// FloatFromBits decodes the runtime bits of float type t.
func FloatFromBits(t Type, bits uint64) float64 {
	if t.Bits() == 32 {
		return float64(math.Float32frombits(uint32(bits)))
	}
	return math.Float64frombits(bits)
}

// FloatToBits encodes v into the runtime bits of float type t.
func FloatToBits(t Type, v float64) uint64 {
	if t.Bits() == 32 {
		return uint64(math.Float32bits(float32(v)))
	}
	return math.Float64bits(v)
}

// FormatValue renders "type ident" for diagnostics.
func FormatValue(v Value) string {
	return fmt.Sprintf("%s %s", v.Type(), v.Ident())
}
