package ir

import (
	"testing"
)

func TestTypeProperties(t *testing.T) {
	cases := []struct {
		typ   Type
		bits  int
		bytes int
		str   string
	}{
		{Void, 0, 0, "void"},
		{I1, 1, 1, "i1"},
		{I8, 8, 1, "i8"},
		{I32, 32, 4, "i32"},
		{I64, 64, 8, "i64"},
		{F32, 32, 4, "float"},
		{F64, 64, 8, "double"},
		{Ptr(F64), 64, 8, "double*"},
		{Ptr(Ptr(I32)), 64, 8, "i32**"},
		{Arr(4, F64), 256, 32, "[4 x double]"},
		{Ptr(Arr(8, I32)), 64, 8, "[8 x i32]*"},
	}
	for _, c := range cases {
		if c.typ.Bits() != c.bits {
			t.Errorf("%s Bits = %d, want %d", c.str, c.typ.Bits(), c.bits)
		}
		if c.typ.SizeBytes() != c.bytes {
			t.Errorf("%s SizeBytes = %d, want %d", c.str, c.typ.SizeBytes(), c.bytes)
		}
		if c.typ.String() != c.str {
			t.Errorf("String = %q, want %q", c.typ.String(), c.str)
		}
	}
}

func TestParseTypeRoundTrip(t *testing.T) {
	for _, typ := range []Type{
		Void, I1, I8, I16, I32, I64, F32, F64,
		Ptr(F64), Ptr(Ptr(I8)), Arr(16, F32), Ptr(Arr(3, I64)),
	} {
		got, err := ParseType(typ.String())
		if err != nil {
			t.Fatalf("ParseType(%q): %v", typ.String(), err)
		}
		if !Equal(got, typ) {
			t.Fatalf("round trip %q -> %q", typ.String(), got.String())
		}
	}
}

func TestParseTypeErrors(t *testing.T) {
	for _, s := range []string{"", "i0", "i65", "banana", "[x double]", "[2 double]"} {
		if _, err := ParseType(s); err == nil {
			t.Errorf("ParseType(%q) succeeded", s)
		}
	}
}

func TestEqual(t *testing.T) {
	if !Equal(Ptr(F64), Ptr(F64)) {
		t.Fatal("identical pointer types not equal")
	}
	if Equal(Ptr(F64), Ptr(F32)) {
		t.Fatal("different pointer types equal")
	}
	if Equal(I32, F32) {
		t.Fatal("i32 == float")
	}
	if !Equal(Arr(2, I8), Arr(2, I8)) || Equal(Arr(2, I8), Arr(3, I8)) {
		t.Fatal("array equality broken")
	}
}

func TestMaskAndSignExt(t *testing.T) {
	if MaskInt(I8, 0x1ff) != 0xff {
		t.Fatalf("MaskInt i8 = %#x", MaskInt(I8, 0x1ff))
	}
	if MaskInt(I64, ^uint64(0)) != ^uint64(0) {
		t.Fatal("MaskInt i64 should be identity")
	}
	if SignExt(I8, 0xff) != -1 {
		t.Fatalf("SignExt i8 0xff = %d", SignExt(I8, 0xff))
	}
	if SignExt(I8, 0x7f) != 127 {
		t.Fatalf("SignExt i8 0x7f = %d", SignExt(I8, 0x7f))
	}
	if SignExt(I1, 1) != -1 {
		t.Fatalf("SignExt i1 1 = %d", SignExt(I1, 1))
	}
	if SignExt(I64, 0xffffffffffffffff) != -1 {
		t.Fatal("SignExt i64")
	}
}

func TestConstBits(t *testing.T) {
	if b, _ := ConstBits(I32c(-1)); b != 0xffffffff {
		t.Fatalf("i32 -1 bits = %#x", b)
	}
	if b, _ := ConstBits(F64c(1.5)); FloatFromBits(F64, b) != 1.5 {
		t.Fatal("f64 const bits")
	}
	if b, _ := ConstBits(F32c(2.5)); FloatFromBits(F32, b) != 2.5 {
		t.Fatal("f32 const bits")
	}
	if _, ok := ConstBits(P("x", I64)); ok {
		t.Fatal("param treated as constant")
	}
	if !IsConst(I64c(3)) || IsConst(P("x", I64)) {
		t.Fatal("IsConst misclassifies")
	}
}
