package ir

import (
	"errors"
	"fmt"
)

// Verify checks structural and type well-formedness of a function:
// terminated blocks, phi placement and incoming edges, operand typing, and
// intrinsic call validity. All problems are collected and returned joined
// (errors.Join), so a builder bug with several symptoms surfaces them in
// one round trip instead of one fix-rerun cycle per error. Within a single
// instruction, checking stops at its first defect (later checks assume the
// earlier shape held).
func Verify(f *Function) error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("%s: no blocks", f.FName)
	}
	var errs []error
	add := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf(format, args...))
	}
	names := map[string]bool{}
	for _, p := range f.Params {
		if names[p.PName] {
			add("%s: duplicate name %%%s", f.FName, p.PName)
		}
		names[p.PName] = true
	}
	blockSet := map[*Block]bool{}
	for _, b := range f.Blocks {
		blockSet[b] = true
	}
	preds := f.Preds()

	for _, b := range f.Blocks {
		if b.Terminator() == nil {
			add("%s/%s: missing terminator", f.FName, b.BName)
		}
		seenNonPhi := false
		for idx, in := range b.Instrs {
			if in.HasResult() {
				if names[in.Name] {
					add("%s/%s: duplicate name %%%s", f.FName, b.BName, in.Name)
				}
				names[in.Name] = true
			}
			if in.Op.IsTerminator() && idx != len(b.Instrs)-1 {
				add("%s/%s: terminator %%%s not at block end", f.FName, b.BName, in.Name)
			}
			if in.Op == OpPhi {
				if seenNonPhi {
					add("%s/%s: phi %%%s after non-phi", f.FName, b.BName, in.Name)
				}
			} else {
				seenNonPhi = true
			}
			if err := verifyInstr(f, b, in, blockSet, preds); err != nil {
				errs = append(errs, err)
			}
		}
	}
	return errors.Join(errs...)
}

func verifyInstr(f *Function, b *Block, in *Instr, blocks map[*Block]bool, preds map[*Block][]*Block) error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("%s/%s/%%%s: %s", f.FName, b.BName, in.Name, fmt.Sprintf(format, args...))
	}
	switch {
	case in.Op.IsBinOp():
		if len(in.Args) != 2 {
			return fail("binop needs 2 operands")
		}
		if !Equal(in.Args[0].Type(), in.Args[1].Type()) || !Equal(in.T, in.Args[0].Type()) {
			return fail("operand/result type mismatch: %s vs %s", in.Args[0].Type(), in.Args[1].Type())
		}
		isFP := in.Op == OpFAdd || in.Op == OpFSub || in.Op == OpFMul || in.Op == OpFDiv
		if isFP != IsFloat(in.T) {
			return fail("%s on %s", in.Op, in.T)
		}
	case in.Op == OpICmp:
		if len(in.Args) != 2 {
			return fail("icmp needs 2 operands")
		}
		if !IsInt(in.Args[0].Type()) && !IsPtr(in.Args[0].Type()) {
			return fail("icmp on %s", in.Args[0].Type())
		}
		if in.Pred < IEQ || in.Pred > IUGE {
			return fail("bad icmp predicate")
		}
	case in.Op == OpFCmp:
		if len(in.Args) != 2 {
			return fail("fcmp needs 2 operands")
		}
		if !IsFloat(in.Args[0].Type()) {
			return fail("fcmp on %s", in.Args[0].Type())
		}
		if in.Pred < FOEQ || in.Pred > FOGE {
			return fail("bad fcmp predicate")
		}
	case in.Op == OpLoad:
		if len(in.Args) < 1 {
			return fail("load needs an address operand")
		}
		pt, ok := in.Args[0].Type().(PtrType)
		if !ok {
			return fail("load from non-pointer")
		}
		if !Equal(pt.Elem, in.T) {
			return fail("load type %s from %s", in.T, pt)
		}
	case in.Op == OpStore:
		if len(in.Args) < 2 {
			return fail("store needs value and address operands")
		}
		pt, ok := in.Args[1].Type().(PtrType)
		if !ok {
			return fail("store to non-pointer")
		}
		if !Equal(pt.Elem, in.Args[0].Type()) {
			return fail("store %s to %s", in.Args[0].Type(), pt)
		}
	case in.Op == OpGEP:
		if len(in.Args) < 2 {
			return fail("gep needs a base pointer and at least one index")
		}
		if _, ok := in.Args[0].Type().(PtrType); !ok {
			return fail("gep on non-pointer")
		}
		for _, idx := range in.Args[1:] {
			if !IsInt(idx.Type()) {
				return fail("gep index of type %s", idx.Type())
			}
		}
		if err := func() (err error) {
			defer func() {
				if r := recover(); r != nil {
					err = fail("%v", r)
				}
			}()
			in.GEPStrides()
			return nil
		}(); err != nil {
			return err
		}
	case in.Op == OpPhi:
		if len(in.Args) == 0 || len(in.Args) != len(in.Blocks) {
			return fail("phi with %d values, %d blocks", len(in.Args), len(in.Blocks))
		}
		pset := map[*Block]bool{}
		for _, p := range preds[b] {
			pset[p] = true
		}
		seen := map[*Block]bool{}
		for k, inBlk := range in.Blocks {
			if !Equal(in.Args[k].Type(), in.T) {
				return fail("phi incoming type %s != %s", in.Args[k].Type(), in.T)
			}
			if !pset[inBlk] {
				return fail("phi incoming from non-predecessor %s", inBlk.BName)
			}
			if seen[inBlk] {
				return fail("phi has duplicate incoming from %s", inBlk.BName)
			}
			seen[inBlk] = true
		}
		if len(seen) != len(pset) {
			return fail("phi covers %d of %d predecessors", len(seen), len(pset))
		}
	case in.Op == OpSelect:
		if len(in.Args) != 3 || !Equal(in.Args[0].Type(), I1) {
			return fail("select needs (i1, T, T)")
		}
		if !Equal(in.Args[1].Type(), in.Args[2].Type()) || !Equal(in.T, in.Args[1].Type()) {
			return fail("select arm types differ")
		}
	case in.Op == OpBr:
		switch len(in.Blocks) {
		case 1:
			if len(in.Args) != 0 {
				return fail("unconditional br with condition")
			}
		case 2:
			if len(in.Args) != 1 || !Equal(in.Args[0].Type(), I1) {
				return fail("conditional br needs i1")
			}
		default:
			return fail("br with %d targets", len(in.Blocks))
		}
		for _, t := range in.Blocks {
			if !blocks[t] {
				return fail("br to foreign block %s", t.BName)
			}
		}
	case in.Op == OpRet:
		if f.Ret.Kind() == KVoid {
			if len(in.Args) != 0 {
				return fail("ret with value in void function")
			}
		} else if len(in.Args) != 1 || !Equal(in.Args[0].Type(), f.Ret) {
			return fail("ret type mismatch")
		}
	case in.Op == OpCall:
		if !Intrinsics[in.Callee] {
			return fail("call to unknown intrinsic %q (user calls must be inlined)", in.Callee)
		}
		for _, a := range in.Args {
			if !Equal(a.Type(), in.T) {
				return fail("intrinsic arg type %s != result %s", a.Type(), in.T)
			}
		}
	case in.Op.IsCast():
		if len(in.Args) != 1 {
			return fail("cast needs one operand")
		}
		from, to := in.Args[0].Type(), in.T
		switch in.Op {
		case OpZExt, OpSExt:
			if !IsInt(from) || !IsInt(to) || from.Bits() >= to.Bits() {
				return fail("%s %s -> %s", in.Op, from, to)
			}
		case OpTrunc:
			if !IsInt(from) || !IsInt(to) || from.Bits() <= to.Bits() {
				return fail("trunc %s -> %s", from, to)
			}
		case OpFPExt:
			if !IsFloat(from) || !IsFloat(to) || from.Bits() >= to.Bits() {
				return fail("fpext %s -> %s", from, to)
			}
		case OpFPTrunc:
			if !IsFloat(from) || !IsFloat(to) || from.Bits() <= to.Bits() {
				return fail("fptrunc %s -> %s", from, to)
			}
		case OpFPToSI:
			if !IsFloat(from) || !IsInt(to) {
				return fail("fptosi %s -> %s", from, to)
			}
		case OpSIToFP:
			if !IsInt(from) || !IsFloat(to) {
				return fail("sitofp %s -> %s", from, to)
			}
		case OpBitcast:
			if from.Bits() != to.Bits() {
				return fail("bitcast %s -> %s width mismatch", from, to)
			}
		}
	default:
		return fail("unknown opcode %d", in.Op)
	}
	return nil
}

// VerifyModule verifies all functions in a module, collecting every
// function's problems into one joined error.
func VerifyModule(m *Module) error {
	var errs []error
	for _, f := range m.Funcs {
		if err := Verify(f); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}
