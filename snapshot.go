package salam

// Checkpoint/restore orchestration. A Session checkpoint captures the full
// dynamic state of a mid-run single-accelerator system — event queue
// position, functional memory, statistics tree, engine reservation queue,
// memory-device queues and in-flight requests — as a versioned
// snapshot.Image. Restore lands a (possibly pooled, warm) session at the
// exact simulated point, and resuming is byte-identical to having run
// straight through: the event queue records only logical (when, pri, seq)
// coordinates, which totally order execution independent of heap layout.
//
// Soundness rests on an accounting invariant: every pending event must be
// claimed by exactly one owner — a device clock tick, a dynamic op's
// compute-latency arrival, or a memory request's scheduled completion.
// Checkpoint counts its claims against the queue's pending total and fails
// cleanly on any topology that schedules events it cannot claim (stream
// windows, MMR bus accesses), rather than producing an image that would
// silently drop events on restore.

import (
	"encoding/json"
	"fmt"
	"sort"

	"gosalam/internal/mem"
	"gosalam/internal/sim"
	"gosalam/internal/snapshot"
	"gosalam/kernels"
)

// fingerprintFor derives the configuration identity stamped into session
// images: the kernel, the workload seed and memory footprint, and every
// option that shapes the simulated schedule. Restore refuses an image whose
// fingerprint does not match the restoring session's options — landing a
// checkpoint under different knobs would silently diverge from the run the
// image came from. Observer-only options (SkipCheck, profiling, timeline
// tracing) are excluded: they never change the schedule, so a checkpoint
// taken under one may resume under another. The hardware profile is not
// fingerprinted (profiles are identified by pointer); images are only
// portable between sessions using the same profile object.
func fingerprintFor(k *kernels.Kernel, opts RunOpts, spaceSize int) string {
	doc := struct {
		Kernel string
		Space  int
		Seed   int64
		Mem    MemKind
		Accel  AccelConfig
		SPMLatency, SPMBanks, SPMPortsPer       int
		CacheBytes, CacheLine, CacheAssoc, MSHR int
	}{
		Kernel: k.Name, Space: spaceSize, Seed: opts.Seed, Mem: opts.Mem,
		Accel:      opts.Accel,
		SPMLatency: opts.SPMLatency, SPMBanks: opts.SPMBanks, SPMPortsPer: opts.SPMPortsPer,
		CacheBytes: opts.CacheBytes, CacheLine: opts.CacheLine,
		CacheAssoc: opts.CacheAssoc, MSHR: opts.CacheMSHRs,
	}
	b, err := json.Marshal(doc)
	if err != nil {
		panic(fmt.Sprintf("salam: unfingerprintable options: %v", err))
	}
	return string(b)
}

// Checkpoint captures the full dynamic state of a run in progress (one
// paused by RunToCycle, or mid-sampling) as a restorable image. The
// session itself is left untouched and can keep running; call Resume to
// finish it. Encode the image for storage on disk.
func (s *Session) Checkpoint() (*snapshot.Image, error) {
	if s.inst == nil || !s.broken {
		return nil, fmt.Errorf("salam: session for %s has no run in progress to checkpoint", s.k.Name)
	}
	img := &snapshot.Image{
		Kind: snapshot.KindSession,
		Key:  s.fp,
		Queue: snapshot.Queue{
			Now: uint64(s.q.Now()), Seq: s.q.Seq(),
			Fired: s.q.Fired(), Pending: s.q.Pending(),
		},
		Space: append([]byte(nil), s.space.Data...),
	}
	var err error
	if img.Stats, err = sim.CaptureStats(s.stats); err != nil {
		return nil, err
	}

	ast, err := s.acc.CaptureState()
	if err != nil {
		return nil, err
	}
	img.Accel = &ast
	cst := s.comm.CaptureState()
	img.Comm = &cst

	// Claim accounting: every pending event must belong to a captured
	// owner, or restore could not rebuild the schedule.
	claimed := 0
	if ast.Clk.Armed {
		claimed++
	}
	for i := range ast.Ops {
		if ast.Ops[i].HasEv {
			claimed++
		}
	}
	if s.spm != nil {
		st, err := s.spm.CaptureState()
		if err != nil {
			return nil, err
		}
		img.SPM = &st
		if st.Clk.Armed {
			claimed++
		}
	}
	if s.cache != nil {
		st, err := s.cache.CaptureState()
		if err != nil {
			return nil, err
		}
		img.Cache = &st
		if st.Clk.Armed {
			claimed++
		}
	}
	if s.dram != nil {
		st, err := s.dram.CaptureState()
		if err != nil {
			return nil, err
		}
		img.DRAM = &st
		if st.Clk.Armed {
			claimed++
		}
	}

	// Scheduled request completions live on the event queue itself.
	var claimErr error
	s.q.ForEachPending(func(when sim.Tick, pri int32, seq uint64, obj sim.Firer) {
		r, ok := obj.(*mem.Request)
		if !ok {
			return
		}
		sr, err := mem.CaptureReq(r)
		if err != nil {
			if claimErr == nil {
				claimErr = err
			}
			return
		}
		sr.Sched = true
		sr.Ev = snapshot.Event{When: uint64(when), Pri: pri, Seq: seq}
		img.Sched = append(img.Sched, sr)
	})
	if claimErr != nil {
		return nil, claimErr
	}
	// ForEachPending walks heap order; images must not depend on it.
	sort.Slice(img.Sched, func(i, j int) bool { return img.Sched[i].Ev.Seq < img.Sched[j].Ev.Seq })
	claimed += len(img.Sched)
	if claimed != img.Queue.Pending {
		return nil, fmt.Errorf("salam: %s: %d pending events but only %d claimed by components — topology not snapshotable at this point",
			s.k.Name, img.Queue.Pending, claimed)
	}
	return img, nil
}

// Restore lands the session at the exact simulated point a Checkpoint
// captured: it rewinds the session like a warm run, replays the workload
// setup, then overwrites all dynamic state from the image — functional
// memory, statistics, queue position, engine state, device queues, and
// every in-flight request (rebound to its restored owner via the request's
// snapshot Owner tag). opts must describe the same configuration the
// image was taken under (enforced via the fingerprint). After a
// successful Restore the session is mid-run; continue with Resume, or
// take another Checkpoint (which reproduces the image byte for byte).
func (s *Session) Restore(opts RunOpts, img *snapshot.Image) error {
	if img == nil || img.Kind != snapshot.KindSession {
		return fmt.Errorf("salam: not a session image")
	}
	if want := fingerprintFor(s.k, opts, s.spaceSize); img.Key != want {
		return fmt.Errorf("salam: image was taken under a different kernel or configuration")
	}
	if img.Accel == nil || img.Comm == nil {
		return fmt.Errorf("salam: session image missing engine state")
	}
	if err := s.begin(opts); err != nil {
		return err
	}
	// From here the session is marked broken until a Resume completes; an
	// error below leaves it dropped by pools rather than half-restored.
	if len(img.Space) != len(s.space.Data) {
		return fmt.Errorf("salam: image memory is %d bytes, session has %d", len(img.Space), len(s.space.Data))
	}
	copy(s.space.Data, img.Space)
	if err := sim.RestoreStats(s.stats, img.Stats); err != nil {
		return err
	}
	s.q.RestoreAt(sim.Tick(img.Queue.Now), img.Queue.Seq, img.Queue.Fired)
	if err := s.acc.RestoreState(*img.Accel); err != nil {
		return err
	}
	if err := s.comm.RestoreState(*img.Comm); err != nil {
		return err
	}
	// The cache restores before SPM/DRAM: DRAM queues may hold cache fill
	// requests that rebind to restored MSHR entries.
	if s.cache != nil {
		if img.Cache == nil {
			return fmt.Errorf("salam: session image has no cache state")
		}
		if err := s.cache.RestoreState(*img.Cache, s.resolveReq); err != nil {
			return err
		}
	}
	if s.spm != nil {
		if img.SPM == nil {
			return fmt.Errorf("salam: session image has no scratchpad state")
		}
		if err := s.spm.RestoreState(*img.SPM, s.resolveReq); err != nil {
			return err
		}
	}
	if s.dram != nil {
		if img.DRAM == nil {
			return fmt.Errorf("salam: session image has no DRAM state")
		}
		if err := s.dram.RestoreState(*img.DRAM, s.resolveReq); err != nil {
			return err
		}
	}
	for _, sr := range img.Sched {
		r, err := s.resolveReq(sr)
		if err != nil {
			return err
		}
		r.Issued = sim.Tick(sr.Issued)
		mem.RestoreScheduled(s.q, s.space, r, sr.Ev)
	}
	if got := s.q.Pending(); got != img.Queue.Pending {
		return fmt.Errorf("salam: restore rebuilt %d pending events, image recorded %d", got, img.Queue.Pending)
	}
	s.runDone = !img.Accel.Running
	return nil
}

// resolveReq rebuilds a captured in-flight request, dispatching on its
// snapshot owner tag: engine requests rebind to their restored dynamic op,
// cache fills to their restored MSHR entry, and writebacks carry only
// bandwidth.
func (s *Session) resolveReq(sr snapshot.Req) (*mem.Request, error) {
	switch sr.Owner {
	case snapshot.OwnerEngine:
		return s.acc.RebuildRequest(sr)
	case snapshot.OwnerCacheFill:
		if s.cache == nil {
			return nil, fmt.Errorf("salam: cache-fill request in a cacheless session image")
		}
		return s.cache.RestoreFillReq(sr.OwnerID)
	case snapshot.OwnerWriteback:
		return mem.RebuildWriteback(sr), nil
	}
	return nil, fmt.Errorf("salam: request %#x has unknown snapshot owner %d", sr.Addr, sr.Owner)
}

// rejectInflight is the Resolver for quiescent SoC images, which by
// construction contain no in-flight requests.
func rejectInflight(sr snapshot.Req) (*mem.Request, error) {
	return nil, fmt.Errorf("salam: quiescent SoC image carries an in-flight request at %#x", sr.Addr)
}

// socFingerprint identifies an SoC's snapshot topology: the memory
// footprint plus every snapshot-registered component in registration
// order.
func socFingerprint(s *SoC) string {
	key := fmt.Sprintf("space=%d", len(s.Space.Data))
	for _, sn := range s.snaps {
		key += "|" + sn.name
	}
	return key
}

// Checkpoint captures a quiescent SoC — no events pending, typically
// right after a driver program completes — as a restorable image: queue
// position, physical memory, the statistics tree, and the persistent
// state of every snapshot-registered component (DRAM, scratchpads,
// accelerator engines and their MMRs). Mid-flight SoC state is not
// snapshotable (multi-accelerator topologies schedule events Checkpoint
// cannot claim); use Session checkpoints for mid-run capture.
func (s *SoC) Checkpoint() (*snapshot.Image, error) {
	if n := s.Q.Pending(); n != 0 {
		return nil, fmt.Errorf("salam: SoC checkpoint requires a quiescent system (%d events pending)", n)
	}
	img := &snapshot.Image{
		Kind:  snapshot.KindSoC,
		Key:   socFingerprint(s),
		Queue: snapshot.Queue{Now: uint64(s.Q.Now()), Seq: s.Q.Seq(), Fired: s.Q.Fired()},
		Space: append([]byte(nil), s.Space.Data...),
	}
	var err error
	if img.Stats, err = sim.CaptureStats(s.Stats); err != nil {
		return nil, err
	}
	for _, sn := range s.snaps {
		c, err := sn.capture()
		if err != nil {
			return nil, fmt.Errorf("salam: snapshotting %s: %w", sn.name, err)
		}
		img.Comps = append(img.Comps, c)
	}
	return img, nil
}

// Restore rewinds the SoC and lands it at a captured quiescent point. The
// target must have the same topology (same components registered in the
// same order) and itself be quiescent. Memory allocation cursors are not
// part of the image; rerun workload setup before launching new programs.
func (s *SoC) Restore(img *snapshot.Image) error {
	if img == nil || img.Kind != snapshot.KindSoC {
		return fmt.Errorf("salam: not a SoC image")
	}
	if want := socFingerprint(s); img.Key != want {
		return fmt.Errorf("salam: image was taken on a different SoC topology")
	}
	if n := s.Q.Pending(); n != 0 {
		return fmt.Errorf("salam: restore requires a quiescent SoC (%d events pending)", n)
	}
	if len(img.Space) != len(s.Space.Data) {
		return fmt.Errorf("salam: image memory is %d bytes, SoC has %d", len(img.Space), len(s.Space.Data))
	}
	if len(img.Comps) != len(s.snaps) {
		return fmt.Errorf("salam: image has %d components, SoC registers %d", len(img.Comps), len(s.snaps))
	}
	s.Reset()
	copy(s.Space.Data, img.Space)
	if err := sim.RestoreStats(s.Stats, img.Stats); err != nil {
		return err
	}
	s.Q.RestoreAt(sim.Tick(img.Queue.Now), img.Queue.Seq, img.Queue.Fired)
	for i := range s.snaps {
		if img.Comps[i].Name != s.snaps[i].name {
			return fmt.Errorf("salam: image component %d is %q, SoC expects %q", i, img.Comps[i].Name, s.snaps[i].name)
		}
		if err := s.snaps[i].restore(&img.Comps[i]); err != nil {
			return fmt.Errorf("salam: restoring %s: %w", s.snaps[i].name, err)
		}
	}
	return nil
}
