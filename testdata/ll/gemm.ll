; ModuleID = 'gemm.c'
source_filename = "gemm.c"
target datalayout = "e-m:e-p270:32:32-p271:32:32-p272:64:64-i64:64-f80:128-n8:16:32:64-S128"
target triple = "x86_64-unknown-linux-gnu"

; void gemm(const double *a, const double *b, double *c)   [n = 8]
;   compiled: clang-14 -O1 -S -emit-llvm gemm.c

; Function Attrs: nofree norecurse nosync nounwind uwtable
define dso_local void @gemm(double* nocapture noundef readonly %0, double* nocapture noundef readonly %1, double* nocapture noundef writeonly %2) local_unnamed_addr #0 {
  br label %4

4:                                                ; preds = %3, %28
  %5 = phi i64 [ 0, %3 ], [ %29, %28 ]
  %6 = shl nuw nsw i64 %5, 3
  br label %7

7:                                                ; preds = %4, %23
  %8 = phi i64 [ 0, %4 ], [ %26, %23 ]
  br label %9

9:                                                ; preds = %7, %9
  %10 = phi i64 [ 0, %7 ], [ %21, %9 ]
  %11 = phi double [ 0.000000e+00, %7 ], [ %20, %9 ]
  %12 = add nuw nsw i64 %6, %10
  %13 = getelementptr inbounds double, double* %0, i64 %12
  %14 = load double, double* %13, align 8, !tbaa !5
  %15 = shl nuw nsw i64 %10, 3
  %16 = add nuw nsw i64 %15, %8
  %17 = getelementptr inbounds double, double* %1, i64 %16
  %18 = load double, double* %17, align 8, !tbaa !5
  %19 = fmul double %14, %18
  %20 = fadd double %11, %19
  %21 = add nuw nsw i64 %10, 1
  %22 = icmp eq i64 %21, 8
  br i1 %22, label %23, label %9, !llvm.loop !9

23:                                               ; preds = %9
  %24 = add nuw nsw i64 %6, %8
  %25 = getelementptr inbounds double, double* %2, i64 %24
  store double %20, double* %25, align 8, !tbaa !5
  %26 = add nuw nsw i64 %8, 1
  %27 = icmp eq i64 %26, 8
  br i1 %27, label %28, label %7, !llvm.loop !11

28:                                               ; preds = %23
  %29 = add nuw nsw i64 %5, 1
  %30 = icmp eq i64 %29, 8
  br i1 %30, label %31, label %4, !llvm.loop !12

31:                                               ; preds = %28
  ret void
}

attributes #0 = { nofree norecurse nosync nounwind uwtable "frame-pointer"="none" "min-legal-vector-width"="0" "no-trapping-math"="true" "stack-protector-buffer-size"="8" "target-cpu"="x86-64" "target-features"="+cx8,+fxsr,+mmx,+sse,+sse2,+x87" "tune-cpu"="generic" }

!llvm.module.flags = !{!0, !1, !2, !3}
!llvm.ident = !{!4}

!0 = !{i32 1, !"wchar_size", i32 4}
!1 = !{i32 7, !"PIC Level", i32 2}
!2 = !{i32 7, !"uwtable", i32 2}
!3 = !{i32 7, !"frame-pointer", i32 2}
!4 = !{!"Debian clang version 14.0.6"}
!5 = !{!6, !6, i64 0}
!6 = !{!"double", !7, i64 0}
!7 = !{!"omnipotent char", !8, i64 0}
!8 = !{!"Simple C/C++ TBAA"}
!9 = distinct !{!9, !10}
!10 = !{!"llvm.loop.mustprogress"}
!11 = distinct !{!11, !10}
!12 = distinct !{!12, !10}
