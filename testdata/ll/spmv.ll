; ModuleID = 'spmv.c'
source_filename = "spmv.c"
target datalayout = "e-m:e-p270:32:32-p271:32:32-p272:64:64-i64:64-f80:128-n8:16:32:64-S128"
target triple = "x86_64-unknown-linux-gnu"

; void spmv(const double *val, const long *cols, const long *row_delim,
;           const double *vec, double *out)                 [n = 32 rows, CRS]
;   compiled: clang-14 -O1 -S -emit-llvm spmv.c
; The inner loop bounds are data-dependent (row_delim), so clang keeps the
; rotated-loop guard (%13) and the sum merges through a phi at %27.

; Function Attrs: nofree norecurse nosync nounwind uwtable
define dso_local void @spmv(double* nocapture noundef readonly %0, i64* nocapture noundef readonly %1, i64* nocapture noundef readonly %2, double* nocapture noundef readonly %3, double* nocapture noundef writeonly %4) local_unnamed_addr #0 {
  br label %6

6:                                                ; preds = %5, %27
  %7 = phi i64 [ 0, %5 ], [ %10, %27 ]
  %8 = getelementptr inbounds i64, i64* %2, i64 %7
  %9 = load i64, i64* %8, align 8, !tbaa !5
  %10 = add nuw nsw i64 %7, 1
  %11 = getelementptr inbounds i64, i64* %2, i64 %10
  %12 = load i64, i64* %11, align 8, !tbaa !5
  %13 = icmp slt i64 %9, %12
  br i1 %13, label %14, label %27

14:                                               ; preds = %6, %14
  %15 = phi i64 [ %25, %14 ], [ %9, %6 ]
  %16 = phi double [ %24, %14 ], [ 0.000000e+00, %6 ]
  %17 = getelementptr inbounds double, double* %0, i64 %15
  %18 = load double, double* %17, align 8, !tbaa !5
  %19 = getelementptr inbounds i64, i64* %1, i64 %15
  %20 = load i64, i64* %19, align 8, !tbaa !5
  %21 = getelementptr inbounds double, double* %3, i64 %20
  %22 = load double, double* %21, align 8, !tbaa !5
  %23 = fmul double %18, %22
  %24 = fadd double %16, %23
  %25 = add nsw i64 %15, 1
  %26 = icmp eq i64 %25, %12
  br i1 %26, label %27, label %14, !llvm.loop !9

27:                                               ; preds = %14, %6
  %28 = phi double [ 0.000000e+00, %6 ], [ %24, %14 ]
  %29 = getelementptr inbounds double, double* %4, i64 %7
  store double %28, double* %29, align 8, !tbaa !5
  %30 = icmp eq i64 %10, 32
  br i1 %30, label %31, label %6, !llvm.loop !11

31:                                               ; preds = %27
  ret void
}

attributes #0 = { nofree norecurse nosync nounwind uwtable "frame-pointer"="none" "min-legal-vector-width"="0" "no-trapping-math"="true" "stack-protector-buffer-size"="8" "target-cpu"="x86-64" "target-features"="+cx8,+fxsr,+mmx,+sse,+sse2,+x87" "tune-cpu"="generic" }

!llvm.module.flags = !{!0, !1, !2, !3}
!llvm.ident = !{!4}

!0 = !{i32 1, !"wchar_size", i32 4}
!1 = !{i32 7, !"PIC Level", i32 2}
!2 = !{i32 7, !"uwtable", i32 2}
!3 = !{i32 7, !"frame-pointer", i32 2}
!4 = !{!"Debian clang version 14.0.6"}
!5 = !{!6, !6, i64 0}
!6 = !{!"double", !7, i64 0}
!7 = !{!"omnipotent char", !8, i64 0}
!8 = !{!"Simple C/C++ TBAA"}
!9 = distinct !{!9, !10}
!10 = !{!"llvm.loop.mustprogress"}
!11 = distinct !{!11, !10}
