; ModuleID = 'relu.c'
source_filename = "relu.c"
target datalayout = "e-m:e-p270:32:32-p271:32:32-p272:64:64-i64:64-f80:128-n8:16:32:64-S128"
target triple = "x86_64-unknown-linux-gnu"

; void relu(const double *in, double *out)                  [n = 256]
;   compiled: clang-14 -O1 -fno-discard-value-names -S -emit-llvm relu.c
; (value names preserved: the other fixture spelling users bring)

; Function Attrs: nofree norecurse nosync nounwind uwtable
define dso_local void @relu(double* nocapture noundef readonly %in, double* nocapture noundef writeonly %out) local_unnamed_addr #0 {
entry:
  br label %for.body

for.body:                                         ; preds = %entry, %for.body
  %i.06 = phi i64 [ 0, %entry ], [ %inc, %for.body ]
  %arrayidx = getelementptr inbounds double, double* %in, i64 %i.06
  %0 = load double, double* %arrayidx, align 8, !tbaa !5
  %cmp1 = fcmp ogt double %0, 0.000000e+00
  %cond = select i1 %cmp1, double %0, double 0.000000e+00
  %arrayidx2 = getelementptr inbounds double, double* %out, i64 %i.06
  store double %cond, double* %arrayidx2, align 8, !tbaa !5
  %inc = add nuw nsw i64 %i.06, 1
  %exitcond.not = icmp eq i64 %inc, 256
  br i1 %exitcond.not, label %for.cond.cleanup, label %for.body, !llvm.loop !9

for.cond.cleanup:                                 ; preds = %for.body
  ret void
}

attributes #0 = { nofree norecurse nosync nounwind uwtable "frame-pointer"="none" "min-legal-vector-width"="0" "no-trapping-math"="true" "stack-protector-buffer-size"="8" "target-cpu"="x86-64" "target-features"="+cx8,+fxsr,+mmx,+sse,+sse2,+x87" "tune-cpu"="generic" }

!llvm.module.flags = !{!0, !1, !2, !3}
!llvm.ident = !{!4}

!0 = !{i32 1, !"wchar_size", i32 4}
!1 = !{i32 7, !"PIC Level", i32 2}
!2 = !{i32 7, !"uwtable", i32 2}
!3 = !{i32 7, !"frame-pointer", i32 2}
!4 = !{!"Debian clang version 14.0.6"}
!5 = !{!6, !6, i64 0}
!6 = !{!"double", !7, i64 0}
!7 = !{!"omnipotent char", !8, i64 0}
!8 = !{!"Simple C/C++ TBAA"}
!9 = distinct !{!9, !10}
!10 = !{!"llvm.loop.mustprogress"}
