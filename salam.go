// Package salam is the public API of gosalam, a from-scratch Go
// reproduction of gem5-SALAM (MICRO 2020): LLVM-based, execute-in-execute
// modeling of custom hardware accelerators inside a full-system
// discrete-event simulation.
//
// The quickest entry point is RunKernel, which simulates one accelerator
// kernel against a private scratchpad or cache and returns timing, power,
// area, and occupancy results:
//
//	res, err := salam.RunKernel(kernels.GEMM(16, 1), salam.DefaultRunOpts())
//
// For multi-accelerator SoCs (clusters, DMAs, hosts, stream links), build
// a SoC with NewSoC and wire components explicitly.
package salam

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gosalam/internal/analysis"
	"gosalam/internal/core"
	"gosalam/internal/hw"
	"gosalam/internal/mem"
	"gosalam/internal/sample"
	"gosalam/internal/sim"
	"gosalam/internal/timeline"
	"gosalam/ir"
	"gosalam/kernels"
)

// defaultProfile is the shared Default40nm instance used whenever
// RunOpts.Profile is nil. Sharing one object (profiles are immutable after
// construction) lets the elaboration cache key profiles by identity, so
// every default-profile run of a kernel maps to the same cached CDFG.
var defaultProfile = hw.Default40nm()

// Re-exported configuration types so callers need only this package.
type (
	// AccelConfig is the accelerator "device config" (clock, FU limits,
	// ports, queue sizes).
	AccelConfig = core.AccelConfig
	// PowerReport is the seven-category power/area breakdown.
	PowerReport = core.PowerReport
	// FUClass names functional-unit classes for FULimits.
	FUClass = hw.FUClass
	// SampleSpec configures interval-sampled simulation (RunOpts.Sample).
	SampleSpec = sample.Spec
	// SampleEstimate is the extrapolation detail of a sampled run
	// (Result.Sample).
	SampleEstimate = sample.Estimate
)

// Functional-unit classes (for AccelConfig.FULimits).
const (
	FUIntAdder      = hw.FUIntAdder
	FUIntMultiplier = hw.FUIntMultiplier
	FUIntDivider    = hw.FUIntDivider
	FUShifter       = hw.FUShifter
	FUBitwise       = hw.FUBitwise
	FUComparator    = hw.FUComparator
	FUFPAdder       = hw.FUFPAdder
	FUFPMultiplier  = hw.FUFPMultiplier
	FUFPDivider     = hw.FUFPDivider
	FUFPSqrt        = hw.FUFPSqrt
)

// MemKind selects the accelerator's data memory.
type MemKind int

// Memory hierarchy options for RunKernel.
const (
	// MemSPM gives the accelerator a private scratchpad sized to the
	// workload (the paper's default configuration).
	MemSPM MemKind = iota
	// MemCache backs the accelerator with a private L1 cache over DRAM.
	MemCache
)

// RunOpts configures a single-accelerator simulation.
type RunOpts struct {
	Accel AccelConfig
	// Profile is the hardware profile (nil = Default40nm).
	Profile *hw.Profile

	Mem MemKind
	// SPM knobs (MemSPM).
	SPMLatency  int
	SPMBanks    int
	SPMPortsPer int
	// Cache knobs (MemCache).
	CacheBytes int
	CacheLine  int
	CacheAssoc int
	CacheMSHRs int

	// Seed selects the workload dataset.
	Seed int64
	// SkipCheck disables the golden comparison (for sweeps where only
	// timing matters).
	SkipCheck bool
	// ProfileCycles enables per-cycle profiling, keeping up to this many
	// samples (0 = off). Read the result via Result.Acc.Profile().
	ProfileCycles int

	// Sample, when enabled, runs interval-sampled simulation: the kernel
	// is divided into Sample.N equal intervals of committed dynamic ops,
	// only the first Sample.K simulate in detail (with a checkpoint taken
	// at each interval boundary), and the rest is extrapolated from the
	// measured steady-state rate. Only kernels whose loop trip counts the
	// static analysis proves exact are eligible. The Result is marked
	// Estimated with a reported error bound; the golden output check is
	// skipped (the run never completes functionally) and the session that
	// ran it is not reused. Part of campaign cache keys.
	Sample SampleSpec `json:"sample"`

	// Timeline, when non-nil, receives cycle-accurate trace events from
	// the run (event-queue activity, engine issue/stall attribution, memory
	// service) — see internal/timeline for the recorder backends. Tracing
	// is observer-effect-free: schedules, cycle counts and stats are
	// byte-identical with it on or off. Excluded from JSON marshaling so
	// campaign job keys (and their result caches) ignore it.
	Timeline timeline.Recorder `json:"-"`
}

// DefaultRunOpts returns the paper-default configuration: a 100 MHz
// accelerator with dedicated FUs and a 2-cycle, 4-bank private SPM.
func DefaultRunOpts() RunOpts {
	return RunOpts{
		Accel:       core.DefaultConfig(),
		Mem:         MemSPM,
		SPMLatency:  2,
		SPMBanks:    4,
		SPMPortsPer: 2,
		CacheBytes:  4096,
		CacheLine:   64,
		CacheAssoc:  2,
		CacheMSHRs:  8,
		Seed:        1,
	}
}

// Result carries everything a run produced.
type Result struct {
	// Cycles is the kernel's accelerator-cycle count.
	Cycles uint64
	// Ticks is total simulated time.
	Ticks sim.Tick
	// EventsFired is the total number of simulation events executed — a
	// fingerprint of the whole event-level schedule, used by the golden
	// determinism test to catch engine drift that happens to preserve the
	// final cycle count.
	EventsFired uint64
	// Power is the full power/area report over the kernel's runtime.
	Power PowerReport
	// Acc exposes the accelerator's detailed statistics.
	Acc *core.Accelerator
	// SPM is non-nil in MemSPM mode.
	SPM *mem.Scratchpad
	// Cache is non-nil in MemCache mode.
	Cache *mem.Cache
	// Stats is the stat-group root for dumping.
	Stats *sim.Group
	// Instance is the workload that ran.
	Instance *kernels.Instance
	// Space is the simulated physical memory.
	Space *ir.FlatMem

	// Estimated marks Cycles and Ticks as sampled extrapolations rather
	// than exact measurements (RunOpts.Sample). Estimated results never
	// enter golden files or exactness-certified search frontiers, and
	// Power covers only the simulated prefix.
	Estimated bool
	// SampleError is the extrapolation's reported relative error bound
	// (zero for exact runs).
	SampleError float64
	// Sample holds the per-interval measurements and extrapolation detail
	// of a sampled run (nil for exact runs).
	Sample *SampleEstimate
}

// RunKernel builds a single-accelerator system around k, runs it to
// completion, verifies the outputs against the kernel's golden model, and
// reports metrics.
func RunKernel(k *kernels.Kernel, opts RunOpts) (*Result, error) {
	return runKernel(k, opts, nil)
}

// RunKernelCtx is RunKernel with cooperative cancellation: when ctx is
// canceled (or its deadline passes) the event loop stops at the next event
// boundary and the call returns ctx's error. This is what lets a sweep
// campaign kill a runaway simulation without leaking a goroutine — the
// simulation really stops rather than being abandoned.
func RunKernelCtx(ctx context.Context, k *kernels.Kernel, opts RunOpts) (*Result, error) {
	return runWithCtx(ctx, k.Name, func(stop func() bool) (*Result, error) {
		return runKernel(k, opts, stop)
	})
}

// runWithCtx wraps a stoppable simulation run with cooperative
// cancellation; Session.RunCtx shares it with RunKernelCtx.
func runWithCtx(ctx context.Context, name string, run func(stop func() bool) (*Result, error)) (*Result, error) {
	if ctx == nil || ctx.Done() == nil {
		return run(nil)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("salam: %s not started: %w", name, err)
	}
	var stop atomic.Bool
	cancelWatch := context.AfterFunc(ctx, func() { stop.Store(true) })
	defer cancelWatch()
	// Check the deadline directly every so often as well: on a single-CPU
	// machine the event loop never yields, so neither the AfterFunc
	// goroutine nor the context's own timer may run before a short
	// simulation finishes — ctx.Err() stays nil past the deadline until the
	// timer fires. Reading the clock here only affects cancellation, never
	// simulated state.
	deadline, hasDeadline := ctx.Deadline()
	ctxErr := func() error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if hasDeadline && !time.Now().Before(deadline) {
			return context.DeadlineExceeded
		}
		return nil
	}
	canceled := false
	var polled uint64
	stopFn := func() bool {
		if canceled {
			return true
		}
		polled++
		if stop.Load() || (polled&1023 == 0 && ctxErr() != nil) {
			canceled = true
		}
		return canceled
	}
	res, err := run(stopFn)
	if err != nil {
		if cerr := ctxErr(); cerr != nil {
			return nil, fmt.Errorf("salam: %s canceled: %w", name, cerr)
		}
	}
	return res, err
}

// spaceSizes caches the simulated-memory size per (kernel, seed): sizing
// requires a throwaway Setup into a probe memory, which would otherwise
// dominate runtime for repeated runs of the same kernel (DSE sweeps run the
// same kernel object hundreds of times). Setup is deterministic, so the
// cached size is exact. Keys pin kernel objects for process lifetime, which
// is fine for sweep workloads that reuse a handful of kernels.
var spaceSizes sync.Map // spaceSizeKey -> int

type spaceSizeKey struct {
	k    *kernels.Kernel
	seed int64
}

func spaceSizeFor(k *kernels.Kernel, seed int64) int {
	key := spaceSizeKey{k: k, seed: seed}
	if v, ok := spaceSizes.Load(key); ok {
		return v.(int)
	}
	probe := ir.NewFlatMem(0, 1<<26)
	probeInst := k.Setup(probe, seed)
	size := nextPow2(probeInst.Bytes*2 + 1<<16)
	spaceSizes.Store(key, size)
	return size
}

// runKernel is the shared cold-path implementation: a one-shot Session. A
// non-nil stop func is polled at every event boundary and halts the
// simulation when it reports true. Warm-start reuse lives in Session /
// SessionPool; this path builds a fresh system per call, sharing only the
// cached static CDFG.
func runKernel(k *kernels.Kernel, opts RunOpts, stop func() bool) (*Result, error) {
	s, err := NewSession(k, opts)
	if err != nil {
		return nil, err
	}
	return s.run(opts, stop)
}

func nextPow2(v int) int {
	n := 1 << 16
	for n < v {
		n <<= 1
	}
	return n
}

// Elaborate exposes static elaboration for tooling (cmd/salam-ll and the
// experiments). It goes through the shared elaboration cache, so repeated
// elaborations of the same configuration return the same immutable CDFG.
func Elaborate(f *ir.Function, profile *hw.Profile, limits map[hw.FUClass]int) (*core.CDFG, error) {
	if profile == nil {
		profile = defaultProfile
	}
	return core.SharedElab.Elaborate(f, profile, limits)
}

// ElabCacheStats reports the process-wide elaboration cache counters:
// lookups that found an existing CDFG vs. lookups that elaborated one.
func ElabCacheStats() (hits, misses uint64) { return core.SharedElab.Stats() }

// AnalyzeKernel returns the static analysis report for k elaborated under
// opts' profile and FU limits. Both the CDFG and the report are cached
// process-wide, so analyzing every point of a sweep that varies only
// non-structural knobs (ports, memory) costs one analysis.
func AnalyzeKernel(k *kernels.Kernel, opts RunOpts) (*analysis.Report, error) {
	g, err := Elaborate(k.F, opts.Profile, opts.Accel.FULimits)
	if err != nil {
		return nil, err
	}
	return analysis.For(g), nil
}

// StaticLowerBound returns the provable cycle-count lower bound for
// simulating k under opts, without running the simulation. ok is false
// when elaboration fails (the simulation itself would fail the same way).
func StaticLowerBound(k *kernels.Kernel, opts RunOpts) (lb uint64, ok bool) {
	rep, err := AnalyzeKernel(k, opts)
	if err != nil {
		return 0, false
	}
	return rep.LowerBound(opts.Accel).Cycles, true
}

// StaticEnvelope is the static floor of one configuration's power and
// area, computed without simulating: AreaUM2 is the exact total area the
// run would report (datapath FUs + registers, plus the SPM macro in
// MemSPM mode), and StaticMW is the exact leakage — a provable lower
// bound on the run's total power, since dynamic energy only adds to it.
// Cache-backed runs mirror the runtime accounting, which attributes no
// private-memory categories.
type StaticEnvelope struct {
	AreaUM2  float64
	StaticMW float64
}

// StaticEnvelopeFor evaluates the static power/area floor for simulating
// k under opts. It mirrors Accelerator.Power exactly: the datapath part
// comes from the elaborated CDFG, the SPM part from the CACTI model at
// the same sizing (the workload-sized scratchpad) and the same knob
// clamping the scratchpad constructor applies.
func StaticEnvelopeFor(k *kernels.Kernel, opts RunOpts) (StaticEnvelope, error) {
	rep, err := AnalyzeKernel(k, opts)
	if err != nil {
		return StaticEnvelope{}, err
	}
	env := StaticEnvelope{
		AreaUM2:  rep.Envelope.AreaUM2,
		StaticMW: rep.Envelope.StaticFUMW + rep.Envelope.StaticRegMW,
	}
	if opts.Mem == MemSPM {
		c := hw.NewCactiSRAM(spaceSizeFor(k, opts.Seed), opts.SPMPortsPer, opts.SPMBanks)
		env.AreaUM2 += c.AreaUM2()
		env.StaticMW += c.LeakageMW()
	}
	return env, nil
}

// StaticEnergy is the provable dynamic-energy lower bound of one
// configuration, computed without simulating. Every component is a floor
// of a runtime counter (see analysis.EnergyBound for the proof sketch);
// TotalPJ is therefore a sound lower bound on the run's measured energy
// (Power.TotalMW() x elapsed), and EDP on its energy-delay product.
type StaticEnergy struct {
	// Dynamic floors: FU energy, register traffic, private-memory
	// accesses (zero for cache-backed runs, whose private-memory energy
	// the accelerator power report does not attribute).
	FUPJ  float64 `json:"fu_pj"`
	RegPJ float64 `json:"reg_pj"`
	MemPJ float64 `json:"mem_pj"`
	// LeakPJ integrates LeakMW (datapath + SPM leakage) over the cycle
	// lower bound at PeriodNS per cycle.
	LeakPJ   float64 `json:"leak_pj"`
	TotalPJ  float64 `json:"total_pj"`
	CyclesLB uint64  `json:"cycles_lb"`
	PeriodNS float64 `json:"period_ns"`
	LeakMW   float64 `json:"leak_mw"`
	// EDP is the energy-delay-product floor in pJ*ns.
	EDP float64 `json:"edp_pjns"`
	// Exact is true when every reachable block's trip count is proved, so
	// the dynamic terms are exact counts rather than floors.
	Exact bool `json:"exact"`
	// Classes breaks the FU floor down per functional-unit class.
	Classes []analysis.ClassEnergy `json:"classes,omitempty"`
}

// StaticEnergyLowerBound evaluates the dynamic-energy floor for simulating
// k under opts. It mirrors the run's energy accounting exactly: the
// datapath floors come from the cached analysis report, the memory-access
// energies from the CACTI model at the same workload sizing and knob
// clamping the scratchpad constructor applies (cache-backed runs get a
// zero memory model, matching MeasuredEnergy's role in Power reports).
func StaticEnergyLowerBound(k *kernels.Kernel, opts RunOpts) (StaticEnergy, error) {
	rep, err := AnalyzeKernel(k, opts)
	if err != nil {
		return StaticEnergy{}, err
	}
	var me analysis.MemEnergy
	if opts.Mem == MemSPM {
		c := hw.NewCactiSRAM(spaceSizeFor(k, opts.Seed), opts.SPMPortsPer, opts.SPMBanks)
		me = analysis.MemEnergy{ReadPJ: c.ReadEnergyPJ(), WritePJ: c.WriteEnergyPJ(), LeakMW: c.LeakageMW()}
	}
	b := rep.EnergyLowerBound(opts.Accel, me)
	se := StaticEnergy{
		FUPJ:     b.FUPJ,
		RegPJ:    b.RegPJ,
		MemPJ:    b.MemPJ,
		LeakPJ:   b.LeakPJ,
		TotalPJ:  b.TotalPJ,
		CyclesLB: b.CyclesLB,
		PeriodNS: b.PeriodNS,
		LeakMW:   rep.Envelope.StaticFUMW + rep.Envelope.StaticRegMW + me.LeakMW,
		EDP:      b.EDPpJns(),
		Exact:    b.Exact,
		Classes:  b.Classes,
	}
	return se, nil
}
