// Quickstart: define a custom accelerator kernel with the IR builder, run
// it on the cycle-accurate engine against a private scratchpad, and read
// back timing, power and area.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	salam "gosalam"
	"gosalam/ir"
	"gosalam/kernels"
)

// buildSaxpy constructs y[i] = a*x[i] + y[i] directly with the IR builder:
// this is what writing a new accelerator for gosalam looks like.
func buildSaxpy(n int) *kernels.Kernel {
	m := ir.NewModule("saxpy")
	b := ir.NewBuilder(m)
	f := b.Func("saxpy", ir.Void,
		ir.P("a", ir.F64), ir.P("x", ir.Ptr(ir.F64)), ir.P("y", ir.Ptr(ir.F64)))
	a, x, y := f.Params[0], f.Params[1], f.Params[2]
	b.LoopUnrolled("i", ir.I64c(0), ir.I64c(int64(n)), 1, 4, func(iv ir.Value) {
		xv := b.Load(b.GEP(x, "px", iv), "xv")
		py := b.GEP(y, "py", iv)
		yv := b.Load(py, "yv")
		b.Store(b.FAdd(b.FMul(a, xv, "ax"), yv, "r"), py)
	})
	b.Ret(nil)

	return &kernels.Kernel{
		Name: "saxpy",
		M:    m,
		F:    f,
		Setup: func(mem *ir.FlatMem, seed int64) *kernels.Instance {
			xA := mem.AllocFor(ir.F64, n)
			yA := mem.AllocFor(ir.F64, n)
			want := make([]float64, n)
			const alpha = 2.5
			for i := 0; i < n; i++ {
				xv, yv := float64(i), float64(n-i)
				mem.WriteF64(xA+uint64(i*8), xv)
				mem.WriteF64(yA+uint64(i*8), yv)
				want[i] = alpha*xv + yv
			}
			return &kernels.Instance{
				Args:   []uint64{ir.FloatToBits(ir.F64, alpha), xA, yA},
				Bytes:  2 * n * 8,
				InAddr: xA, InBytes: uint64(2 * n * 8),
				OutAddr: yA, OutBytes: uint64(n * 8),
				Check: func(mm *ir.FlatMem) error {
					for i, w := range want {
						if got := mm.ReadF64(yA + uint64(i*8)); got != w {
							return fmt.Errorf("y[%d] = %g, want %g", i, got, w)
						}
					}
					return nil
				},
			}
		},
	}
}

func main() {
	k := buildSaxpy(256)
	fmt.Println("--- kernel IR ---")
	fmt.Print(ir.Print(k.M))

	opts := salam.DefaultRunOpts()
	res, err := salam.RunKernel(k, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- results ---")
	fmt.Printf("cycles:         %d (%.2f µs at %g MHz)\n",
		res.Cycles, float64(res.Ticks)/1e6, opts.Accel.ClockMHz)
	fmt.Printf("golden check:   ok (engine output == reference)\n")
	fmt.Printf("power:          %.3f mW total (%.3f mW datapath)\n",
		res.Power.TotalMW(), res.Power.DatapathMW())
	fmt.Printf("datapath area:  %.0f µm²\n", res.Power.AreaFU+res.Power.AreaReg)
	fmt.Printf("loads/stores:   %.0f / %.0f\n",
		res.Acc.Comm.LoadsIssued.Value(), res.Acc.Comm.StoresIssued.Value())
}
