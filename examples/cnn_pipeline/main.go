// CNN pipeline: build a three-accelerator SoC (conv2d → ReLU → max-pool)
// two ways — host-sequenced through a shared scratchpad, and
// self-synchronizing through stream buffers (the paper's Fig. 16 b/c) —
// and compare end-to-end times. Both produce bit-identical results; only
// the system integration differs.
//
//	go run ./examples/cnn_pipeline
package main

import (
	"fmt"
	"log"

	salam "gosalam"
	"gosalam/internal/soccfg"
	"gosalam/kernels"
)

const (
	imgH, imgW = 18, 18
	convH      = imgH - 2
	convW      = imgW - 2
)

func workload() ([]float64, []float64, []float64) {
	img := make([]float64, imgH*imgW)
	for i := range img {
		img[i] = float64((i*31)%13)/6.0 - 1
	}
	weights := []float64{1, 0, -1, 2, 0, -2, 1, 0, -1}
	want := kernels.MaxPoolGolden(
		kernels.ReLUGolden(kernels.ConvGolden(img, weights, imgH, imgW)), convH, convW)
	return img, weights, want
}

// sharedCfg declares the shared-scratchpad topology — the same schema
// configs/cnn_cluster.json ships, at this example's 18x18 image. Building
// the identical SoC by hand with AddSPM/AddAccel is byte-identical; the
// config-smoke suite proves that equivalence against the golden file.
const sharedCfg = `{
  "version": 1,
  "soc": {
    "dram_mb": 16,
    "spms": [{"name": "shared", "bytes": 65536, "latency": 2, "banks": 4, "ports": 4}],
    "accelerators": [
      {"name": "conv", "kernel": "conv2d", "size": [18, 18], "shared_spm": "shared"},
      {"name": "relu", "kernel": "relu", "size": [256], "shared_spm": "shared"},
      {"name": "pool", "kernel": "maxpool", "size": [16, 16], "shared_spm": "shared"}
    ]
  }
}`

// sharedSPM runs the layer host-sequenced through one scratchpad, built
// from the declarative config above.
func sharedSPM() (float64, error) {
	img, weights, want := workload()
	cfg, err := soccfg.Parse([]byte(sharedCfg))
	if err != nil {
		return 0, err
	}
	built, err := salam.BuildFromConfig(cfg)
	if err != nil {
		return 0, err
	}
	soc := built.SoC
	shared := built.SPMs["shared"]
	conv, relu, pool := built.Accels["conv"], built.Accels["relu"], built.Accels["pool"]

	base := shared.Range().Base
	imgA, wA := base, base+uint64(len(img)*8)
	convA := wA + 128
	reluA := convA + uint64(convH*convW*8)
	poolA := reluA + uint64(convH*convW*8)
	for i, v := range img {
		soc.Space.WriteF64(imgA+uint64(i*8), v)
	}
	for i, v := range weights {
		soc.Space.WriteF64(wA+uint64(i*8), v)
	}

	var prog []salam.DriverOp
	prog = append(prog, salam.StartAccel(conv.MMRBase, []uint64{imgA, wA, convA}, true)...)
	prog = append(prog, salam.WaitIRQ{Line: conv.IRQLine})
	prog = append(prog, salam.StartAccel(relu.MMRBase, []uint64{convA, reluA}, true)...)
	prog = append(prog, salam.WaitIRQ{Line: relu.IRQLine})
	prog = append(prog, salam.StartAccel(pool.MMRBase, []uint64{reluA, poolA}, true)...)
	prog = append(prog, salam.WaitIRQ{Line: pool.IRQLine})

	end, err := soc.RunHost(prog)
	if err != nil {
		return 0, err
	}
	soc.Run()
	for i, w := range want {
		if got := soc.Space.ReadF64(poolA + uint64(i*8)); !approxEq(got, w) {
			return 0, fmt.Errorf("shared: pool[%d] = %g, want %g", i, got, w)
		}
	}
	return float64(end) / 1e6, nil
}

// streamed runs the layer through stream buffers with no host involvement
// between stages.
func streamed() (float64, error) {
	img, weights, want := workload()
	soc := salam.NewSoC(16)

	conv, err := soc.AddAccel("conv", kernels.Conv2D(imgH, imgW).F,
		salam.AccelOpts{SPMBytes: 32 << 10})
	if err != nil {
		return 0, err
	}
	relu, err := soc.AddAccel("relu", kernels.ReLU(convH*convW).F,
		salam.AccelOpts{SPMBytes: 4096})
	if err != nil {
		return 0, err
	}
	pool, err := soc.AddAccel("pool", kernels.MaxPoolStream(convH, convW).F,
		salam.AccelOpts{SPMBytes: 32 << 10})
	if err != nil {
		return 0, err
	}
	convOut, reluIn := soc.StreamLink("s1", conv, relu, 512)
	reluOut, poolIn := soc.StreamLink("s2", relu, pool, 512)

	cb := conv.SPM.Range().Base
	imgA, wA := cb, cb+uint64(len(img)*8)
	pb := pool.SPM.Range().Base
	linesA, poolA := pb, pb+uint64(2*convW*8)+64
	for i, v := range img {
		soc.Space.WriteF64(imgA+uint64(i*8), v)
	}
	for i, v := range weights {
		soc.Space.WriteF64(wA+uint64(i*8), v)
	}

	var prog []salam.DriverOp
	prog = append(prog, salam.StartAccel(pool.MMRBase, []uint64{poolIn, linesA, poolA}, true)...)
	prog = append(prog, salam.StartAccel(relu.MMRBase, []uint64{reluIn, reluOut}, false)...)
	prog = append(prog, salam.StartAccel(conv.MMRBase, []uint64{imgA, wA, convOut}, false)...)
	prog = append(prog, salam.WaitIRQ{Line: pool.IRQLine})

	end, err := soc.RunHost(prog)
	if err != nil {
		return 0, err
	}
	soc.Run()
	for i, w := range want {
		if got := soc.Space.ReadF64(poolA + uint64(i*8)); !approxEq(got, w) {
			return 0, fmt.Errorf("stream: pool[%d] = %g, want %g", i, got, w)
		}
	}
	return float64(end) / 1e6, nil
}

func approxEq(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}

func main() {
	shared, err := sharedSPM()
	if err != nil {
		log.Fatal(err)
	}
	stream, err := streamed()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CNN layer (%dx%d image), conv2d -> ReLU -> max-pool\n\n", imgH, imgW)
	fmt.Printf("shared SPM + host sync:   %8.2f µs\n", shared)
	fmt.Printf("stream buffers (direct):  %8.2f µs\n", stream)
	fmt.Printf("\npipelining speedup: %.2fx — the paper's Fig. 16(c) effect:\n", shared/stream)
	fmt.Println("stream FIFOs let stages overlap and self-synchronize, removing")
	fmt.Println("the host from the inner control loop entirely.")
}
