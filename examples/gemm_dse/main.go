// GEMM design-space exploration: sweep functional-unit allocations and
// memory bandwidth for the tree-reduction GEMM and print the
// power/performance points plus the Pareto frontier — the workflow of the
// paper's Figs. 13-15.
//
// The 16 sweep points are independent simulations, so they run through
// the campaign engine (internal/campaign): all cores by default, per-job
// progress on stderr, and results back in submission order so the table
// prints exactly as the serial loop would.
//
//	go run ./examples/gemm_dse
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"sort"

	salam "gosalam"
	"gosalam/internal/campaign"
	"gosalam/kernels"
)

type point struct {
	fu, ports int
	timeUS    float64
	powerMW   float64
	occupancy float64
	stalled   float64
}

func main() {
	k := kernels.GEMMTree(8)
	probe := func(res *salam.Result) map[string]float64 {
		return map[string]float64{
			"fpmul_occ": res.Acc.FUOccupancy(salam.FUFPMultiplier),
			"stalled":   res.Acc.StallCycles.Value() / res.Acc.ActiveCycles.Value(),
		}
	}
	var grid []point
	var jobs []campaign.Job
	for _, fu := range []int{2, 4, 8, 16} {
		for _, ports := range []int{2, 4, 8, 16} {
			opts := salam.DefaultRunOpts()
			opts.Accel.ReadPorts, opts.Accel.WritePorts = ports, ports
			opts.Accel.MaxOutstanding = 2 * ports
			opts.SPMPortsPer = ports
			opts.Accel.ResQueueSize = 1024
			opts.Accel.FULimits = map[salam.FUClass]int{
				salam.FUFPAdder: fu, salam.FUFPMultiplier: fu,
			}
			grid = append(grid, point{fu: fu, ports: ports})
			jobs = append(jobs, campaign.Job{
				ID:        fmt.Sprintf("gemm fu=%d ports=%d", fu, ports),
				Kernel:    k,
				KernelKey: "gemm_tree/n=8",
				Opts:      opts,
				Probe:     probe,
				ProbeKey:  "gemm_dse/v1",
			})
		}
	}

	outcomes := campaign.Run(context.Background(), campaign.Config{
		Progress: campaign.NewWriterReporter(os.Stderr),
	}, jobs)
	if err := campaign.FirstError(outcomes); err != nil {
		log.Fatal(err)
	}

	var pts []point
	for i, o := range outcomes {
		p := grid[i]
		p.timeUS = float64(o.Metrics.Ticks) / 1e6
		p.powerMW = o.Metrics.Power.TotalMW()
		p.occupancy = o.Metrics.Extra["fpmul_occ"]
		p.stalled = o.Metrics.Extra["stalled"]
		pts = append(pts, p)
	}

	fmt.Println("fp_units  ports  time_us  power_mw  fpmul_occ  stalled")
	for _, p := range pts {
		fmt.Printf("%8d %6d %8.2f %9.2f %10.1f%% %7.1f%%\n",
			p.fu, p.ports, p.timeUS, p.powerMW, p.occupancy*100, p.stalled*100)
	}

	// Pareto frontier: minimal time and power.
	sort.Slice(pts, func(i, j int) bool { return pts[i].timeUS < pts[j].timeUS })
	fmt.Println("\nPareto frontier (time vs power):")
	best := 1e18
	for _, p := range pts {
		if p.powerMW < best {
			best = p.powerMW
			fmt.Printf("  fu=%d ports=%d: %.2f µs @ %.2f mW\n", p.fu, p.ports, p.timeUS, p.powerMW)
		}
	}
	fmt.Println("\nPoints off the frontier over-allocate FUs relative to the")
	fmt.Println("memory bandwidth — the effect the paper reads off Fig. 13.")
}
