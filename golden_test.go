package salam_test

// Golden determinism gate for the simulation engine. Every kernel in
// kernels.All runs at DefaultRunOpts and its cycle count, total tick count,
// and fired-event count are compared byte-for-byte against the committed
// golden file. Any engine change that alters the event-level schedule —
// not just the final answer — trips this test. Regenerate deliberately with
//
//	go test -run TestGoldenDeterminism -update-golden
//
// and justify the diff in the commit message.

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	salam "gosalam"
	"gosalam/kernels"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden_cycles.json from the current engine")

const goldenPath = "testdata/golden_cycles.json"

// goldenPoint is one kernel's schedule fingerprint.
type goldenPoint struct {
	Cycles      uint64 `json:"cycles"`
	Ticks       uint64 `json:"ticks"`
	EventsFired uint64 `json:"events_fired"`
}

func currentGolden(t *testing.T) []byte {
	t.Helper()
	got := map[string]goldenPoint{}
	for _, k := range kernels.All(kernels.Small) {
		res, err := salam.RunKernel(k, salam.DefaultRunOpts())
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		got[k.Name] = goldenPoint{
			Cycles:      res.Cycles,
			Ticks:       uint64(res.Ticks),
			EventsFired: res.EventsFired,
		}
	}
	// encoding/json emits map keys sorted, so the bytes are canonical.
	out, err := json.MarshalIndent(got, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(out, '\n')
}

func TestGoldenDeterminism(t *testing.T) {
	got := currentGolden(t)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", goldenPath)
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden once): %v", err)
	}
	if bytes.Equal(got, want) {
		return
	}
	// Report the per-kernel drift, not just "bytes differ".
	var gotM, wantM map[string]goldenPoint
	if json.Unmarshal(got, &gotM) != nil || json.Unmarshal(want, &wantM) != nil {
		t.Fatalf("golden mismatch (and undecodable):\ngot:\n%s\nwant:\n%s", got, want)
	}
	for name, w := range wantM {
		g, ok := gotM[name]
		if !ok {
			t.Errorf("%s: missing from current run", name)
			continue
		}
		if g != w {
			t.Errorf("%s: got cycles=%d ticks=%d events=%d, want cycles=%d ticks=%d events=%d",
				name, g.Cycles, g.Ticks, g.EventsFired, w.Cycles, w.Ticks, w.EventsFired)
		}
	}
	for name := range gotM {
		if _, ok := wantM[name]; !ok {
			t.Errorf("%s: not in golden file (run -update-golden)", name)
		}
	}
	if !t.Failed() {
		t.Fatal("golden bytes differ but decoded values match: file needs -update-golden reformat")
	}
}
