package salam_test

// Golden determinism gate for the simulation engine. Every kernel in
// kernels.All runs at DefaultRunOpts and its cycle count, total tick count,
// and fired-event count are compared byte-for-byte against the committed
// golden file. Any engine change that alters the event-level schedule —
// not just the final answer — trips this test. Regenerate deliberately with
//
//	go test -run TestGoldenDeterminism -update-golden
//
// and justify the diff in the commit message.

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	salam "gosalam"
	"gosalam/internal/timeline"
	"gosalam/kernels"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden_cycles.json from the current engine")

const goldenPath = "testdata/golden_cycles.json"

// goldenPoint is one kernel's schedule fingerprint.
type goldenPoint struct {
	Cycles      uint64 `json:"cycles"`
	Ticks       uint64 `json:"ticks"`
	EventsFired uint64 `json:"events_fired"`
}

// currentGolden fingerprints every kernel plus the cluster scenario. With
// traced set, every run carries a live timeline recorder (JSON + breakdown
// tee); the resulting bytes must be identical either way — that is the
// observer-effect guarantee TestGoldenTracedObserverEffect enforces.
func currentGolden(t *testing.T, traced bool) []byte {
	t.Helper()
	got := map[string]goldenPoint{}
	for _, k := range kernels.All(kernels.Small) {
		opts := salam.DefaultRunOpts()
		if traced {
			opts.Timeline = timeline.NewTee(timeline.NewJSON(), timeline.NewBreakdown())
		}
		res, err := salam.RunKernel(k, opts)
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		got[k.Name] = goldenPoint{
			Cycles:      res.Cycles,
			Ticks:       uint64(res.Ticks),
			EventsFired: res.EventsFired,
		}
	}
	// Clang-emitted fixtures enter the suite under ll/ keys: same
	// workloads, compiler-shaped IR, separately pinned schedules.
	for _, k := range llKernels(t) {
		opts := salam.DefaultRunOpts()
		if traced {
			opts.Timeline = timeline.NewTee(timeline.NewJSON(), timeline.NewBreakdown())
		}
		res, err := salam.RunKernel(k, opts)
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		got[k.Name] = goldenPoint{
			Cycles:      res.Cycles,
			Ticks:       uint64(res.Ticks),
			EventsFired: res.EventsFired,
		}
	}
	got["cnn-cluster"] = clusterGolden(t, traced)
	// encoding/json emits map keys sorted, so the bytes are canonical.
	out, err := json.MarshalIndent(got, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(out, '\n')
}

// clusterGolden fingerprints a multi-accelerator SoC: a host-sequenced
// conv2d → ReLU → max-pool pipeline through one shared scratchpad (the
// paper's Fig. 16b integration). The single-kernel entries exercise one
// accelerator against private memory; this entry pins the schedule of the
// crossbar, IRQ/GIC, host driver, and inter-accelerator sequencing, so
// engine drift in the system layer cannot hide behind unchanged kernel
// runs. The cycle fingerprint is the host-observed end time in ticks.
func clusterGolden(t *testing.T, traced bool) goldenPoint {
	t.Helper()
	const imgH, imgW = 12, 12
	const convH, convW = imgH - 2, imgW - 2
	img := make([]float64, imgH*imgW)
	for i := range img {
		img[i] = float64((i*31)%13)/6.0 - 1
	}
	weights := []float64{1, 0, -1, 2, 0, -2, 1, 0, -1}
	want := kernels.MaxPoolGolden(
		kernels.ReLUGolden(kernels.ConvGolden(img, weights, imgH, imgW)), convH, convW)

	soc := salam.NewSoC(16)
	if traced {
		soc.SetTimeline(timeline.NewTee(timeline.NewJSON(), timeline.NewBreakdown()))
	}
	shared := soc.AddSPM("shared", 64<<10, 2, 4, 4)
	conv, err := soc.AddAccel("conv", kernels.Conv2D(imgH, imgW).F, salam.AccelOpts{SharedSPM: shared})
	if err != nil {
		t.Fatal(err)
	}
	relu, err := soc.AddAccel("relu", kernels.ReLU(convH*convW).F, salam.AccelOpts{SharedSPM: shared})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := soc.AddAccel("pool", kernels.MaxPool(convH, convW).F, salam.AccelOpts{SharedSPM: shared})
	if err != nil {
		t.Fatal(err)
	}

	base := shared.Range().Base
	imgA, wA := base, base+uint64(len(img)*8)
	convA := wA + 128
	reluA := convA + uint64(convH*convW*8)
	poolA := reluA + uint64(convH*convW*8)
	for i, v := range img {
		soc.Space.WriteF64(imgA+uint64(i*8), v)
	}
	for i, v := range weights {
		soc.Space.WriteF64(wA+uint64(i*8), v)
	}

	var prog []salam.DriverOp
	prog = append(prog, salam.StartAccel(conv.MMRBase, []uint64{imgA, wA, convA}, true)...)
	prog = append(prog, salam.WaitIRQ{Line: conv.IRQLine})
	prog = append(prog, salam.StartAccel(relu.MMRBase, []uint64{convA, reluA}, true)...)
	prog = append(prog, salam.WaitIRQ{Line: relu.IRQLine})
	prog = append(prog, salam.StartAccel(pool.MMRBase, []uint64{reluA, poolA}, true)...)
	prog = append(prog, salam.WaitIRQ{Line: pool.IRQLine})

	end, err := soc.RunHost(prog)
	if err != nil {
		t.Fatal(err)
	}
	soc.Run()
	for i, w := range want {
		got := soc.Space.ReadF64(poolA + uint64(i*8))
		if diff := got - w; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("cnn-cluster: pool[%d] = %g, want %g", i, got, w)
		}
	}
	return goldenPoint{
		Cycles:      uint64(end),
		Ticks:       uint64(soc.Q.Now()),
		EventsFired: soc.Q.Fired(),
	}
}

// TestGoldenTracedObserverEffect is the CI gate on the timeline's
// observer-effect-free contract: the full golden suite — all kernels plus
// the cnn-cluster SoC — re-runs with live recorders attached and must
// produce exactly the committed golden bytes. A recorder that schedules an
// event, perturbs a queue, or leaks into engine state shifts a fingerprint
// and fails here.
func TestGoldenTracedObserverEffect(t *testing.T) {
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run TestGoldenDeterminism -update-golden once): %v", err)
	}
	got := currentGolden(t, true)
	if !bytes.Equal(got, want) {
		t.Fatalf("tracing perturbed the simulation:\ntraced:\n%s\ngolden:\n%s", got, want)
	}
}

func TestGoldenDeterminism(t *testing.T) {
	got := currentGolden(t, false)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", goldenPath)
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden once): %v", err)
	}
	if bytes.Equal(got, want) {
		return
	}
	// Report the per-kernel drift, not just "bytes differ".
	var gotM, wantM map[string]goldenPoint
	if json.Unmarshal(got, &gotM) != nil || json.Unmarshal(want, &wantM) != nil {
		t.Fatalf("golden mismatch (and undecodable):\ngot:\n%s\nwant:\n%s", got, want)
	}
	for name, w := range wantM {
		g, ok := gotM[name]
		if !ok {
			t.Errorf("%s: missing from current run", name)
			continue
		}
		if g != w {
			t.Errorf("%s: got cycles=%d ticks=%d events=%d, want cycles=%d ticks=%d events=%d",
				name, g.Cycles, g.Ticks, g.EventsFired, w.Cycles, w.Ticks, w.EventsFired)
		}
	}
	for name := range gotM {
		if _, ok := wantM[name]; !ok {
			t.Errorf("%s: not in golden file (run -update-golden)", name)
		}
	}
	if !t.Failed() {
		t.Fatal("golden bytes differ but decoded values match: file needs -update-golden reformat")
	}
}
