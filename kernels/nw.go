package kernels

import (
	"gosalam/ir"
)

// NW builds the MachSuite nw kernel: the Needleman-Wunsch dynamic-
// programming matrix fill for sequence alignment over integer scores.
// Its runtime control dependencies (max selection) map onto MUXes in both
// HLS and SALAM — the property behind NW's very low timing error in
// Fig. 10.
func NW(seqLen int) *Kernel {
	const (
		matchScore    = 1
		mismatchScore = -1
		gapScore      = -1
	)
	m := ir.NewModule("nw")
	b := ir.NewBuilder(m)
	f := b.Func("needwun", ir.Void,
		ir.P("seqA", ir.Ptr(ir.I64)), ir.P("seqB", ir.Ptr(ir.I64)),
		ir.P("M", ir.Ptr(ir.I64))) // (n+1) x (n+1) score matrix
	sa, sb, mat := f.Params[0], f.Params[1], f.Params[2]
	n := int64(seqLen)
	W := ir.I64c(n + 1)

	// Boundary rows/cols.
	b.Loop("bi", ir.I64c(0), ir.I64c(n+1), 1, func(i ir.Value) {
		g := b.Mul(i, ir.I64c(gapScore), "grow")
		b.Store(g, b.GEP(mat, "pr", b.Mul(i, W, "ri")))
		b.Store(g, b.GEP(mat, "pcn", i))
	})
	// Fill. The left neighbor is carried in a register across the inner
	// loop (the score was just computed), matching the ILP tuning HLS
	// performs; diagonal and up neighbors come from the previous row.
	b.Loop("i", ir.I64c(1), ir.I64c(n+1), 1, func(i ir.Value) {
		ai := b.Load(b.GEP(sa, "pa", b.Sub(i, ir.I64c(1), "im1")), "ai")
		row := b.Mul(i, W, "row")
		prow := b.Mul(b.Sub(i, ir.I64c(1), "ip"), W, "prow")
		rowInit := b.Mul(i, ir.I64c(gapScore), "ginit") // M[i][0]
		b.LoopCarried("j", ir.I64c(1), ir.I64c(n+1), 1, []ir.Value{rowInit},
			func(j ir.Value, cv []ir.Value) []ir.Value {
				bj := b.Load(b.GEP(sb, "pbj", b.Sub(j, ir.I64c(1), "jm1")), "bj")
				isMatch := b.ICmp(ir.IEQ, ai, bj, "eq")
				sub := b.Select(isMatch, ir.I64c(matchScore), ir.I64c(mismatchScore), "sub")
				diag := b.Add(b.Load(b.GEP(mat, "pd", b.Add(prow, b.Sub(j, ir.I64c(1), "jd"), "di")), "d"), sub, "diag")
				up := b.Add(b.Load(b.GEP(mat, "pu", b.Add(prow, j, "ui")), "u"), ir.I64c(gapScore), "up")
				left := b.Add(cv[0], ir.I64c(gapScore), "left")
				var best ir.Value = b.Select(b.ICmp(ir.ISGT, diag, up, "c1"), diag, up, "m1")
				best = b.Select(b.ICmp(ir.ISGT, best, left, "c2"), best, left, "m2")
				b.Store(best, b.GEP(mat, "pm", b.Add(row, j, "mi")))
				return []ir.Value{best}
			})
	})
	b.Ret(nil)
	verify(f)

	return &Kernel{
		Name: "nw",
		M:    m,
		F:    f,
		Setup: func(mem *ir.FlatMem, seed int64) *Instance {
			r := rng(seed)
			A := make([]int64, seqLen)
			B := make([]int64, seqLen)
			for i := range A {
				A[i] = int64(r.Intn(4)) // ACGT
				B[i] = int64(r.Intn(4))
			}
			w := seqLen + 1
			aA := mem.AllocFor(ir.I64, seqLen)
			bA := mem.AllocFor(ir.I64, seqLen)
			mA := mem.AllocFor(ir.I64, w*w)
			writeI64s(mem, aA, A)
			writeI64s(mem, bA, B)

			want := make([]int64, w*w)
			for i := 0; i <= seqLen; i++ {
				want[i*w] = int64(i * gapScore)
				want[i] = int64(i * gapScore)
			}
			for i := 1; i <= seqLen; i++ {
				for j := 1; j <= seqLen; j++ {
					sub := int64(mismatchScore)
					if A[i-1] == B[j-1] {
						sub = matchScore
					}
					diag := want[(i-1)*w+j-1] + sub
					up := want[(i-1)*w+j] + gapScore
					left := want[i*w+j-1] + gapScore
					best := diag
					if up > best {
						best = up
					}
					if left > best {
						best = left
					}
					want[i*w+j] = best
				}
			}
			return &Instance{
				Args:   []uint64{aA, bA, mA},
				Bytes:  (2*seqLen + w*w) * 8,
				InAddr: aA, InBytes: uint64(2 * seqLen * 8),
				OutAddr: mA, OutBytes: uint64(w * w * 8),
				Check: func(mm *ir.FlatMem) error {
					return checkI64(mm, mA, want, "M")
				},
			}
		},
	}
}
