package kernels

import (
	"math"

	"gosalam/ir"
)

// FFT builds the MachSuite fft/strided kernel: an in-place radix-2 FFT
// over n complex points held in separate real/imag arrays with
// precomputed twiddle tables. n must be a power of two. The rootindex
// test makes the butterfly's twiddle multiply data-dependent control —
// part of why FFT stresses trace-based models less than SALAM (Fig. 10
// reports 0.32% error thanks to its regular structure).
func FFT(n int) *Kernel {
	if n&(n-1) != 0 || n < 4 {
		panic("kernels: FFT size must be a power of two >= 4")
	}
	logN := 0
	for 1<<logN < n {
		logN++
	}
	m := ir.NewModule("fft")
	b := ir.NewBuilder(m)
	f := b.Func("fft", ir.Void,
		ir.P("real", ir.Ptr(ir.F64)), ir.P("img", ir.Ptr(ir.F64)),
		ir.P("real_twid", ir.Ptr(ir.F64)), ir.P("img_twid", ir.Ptr(ir.F64)))
	re, im, reT, imT := f.Params[0], f.Params[1], f.Params[2], f.Params[3]
	N := ir.I64c(int64(n))

	// for log in 0..logN-1: span = N >> (log+1)
	b.Loop("log", ir.I64c(0), ir.I64c(int64(logN)), 1, func(log ir.Value) {
		span := b.LShr(N, b.Add(log, ir.I64c(1), "log1"), "span")
		b.Loop("j", ir.I64c(0), N, 1, func(j ir.Value) {
			odd := b.Or(j, span, "odd")
			// Process each pair once: only when j == odd.
			isOwner := b.ICmp(ir.IEQ, j, odd, "owner")
			b.If(isOwner, "pair", func() {
				even := b.Xor(odd, span, "even")
				pe := b.GEP(re, "pre", even)
				po := b.GEP(re, "pro", odd)
				qe := b.GEP(im, "pie", even)
				qo := b.GEP(im, "pio", odd)
				reE := b.Load(pe, "reE")
				reO := b.Load(po, "reO")
				imE := b.Load(qe, "imE")
				imO := b.Load(qo, "imO")
				// Butterfly.
				b.Store(b.FAdd(reE, reO, "reSum"), pe)
				reD := b.FSub(reE, reO, "reDiff")
				b.Store(reD, po)
				b.Store(b.FAdd(imE, imO, "imSum"), qe)
				imD := b.FSub(imE, imO, "imDiff")
				b.Store(imD, qo)
				// Twiddle rotation when rootindex != 0.
				root := b.And(b.Shl(even, log, "shifted"), ir.I64c(int64(n-1)), "root")
				hasTwiddle := b.ICmp(ir.INE, root, ir.I64c(0), "twid")
				b.If(hasTwiddle, "rot", func() {
					rt := b.Load(b.GEP(reT, "prt", root), "rt")
					it := b.Load(b.GEP(imT, "pit", root), "it")
					ro := b.Load(po, "ro2")
					io := b.Load(qo, "io2")
					newRe := b.FSub(b.FMul(rt, ro, "m1"), b.FMul(it, io, "m2"), "newRe")
					newIm := b.FAdd(b.FMul(rt, io, "m3"), b.FMul(it, ro, "m4"), "newIm")
					b.Store(newRe, po)
					b.Store(newIm, qo)
				})
			})
		})
	})
	b.Ret(nil)
	verify(f)

	return &Kernel{
		Name: "fft",
		M:    m,
		F:    f,
		Setup: func(mem *ir.FlatMem, seed int64) *Instance {
			r := rng(seed)
			real := make([]float64, n)
			img := make([]float64, n)
			for i := range real {
				real[i] = r.Float64()*2 - 1
				img[i] = r.Float64()*2 - 1
			}
			reTw := make([]float64, n)
			imTw := make([]float64, n)
			for i := 0; i < n; i++ {
				ang := -2 * math.Pi * float64(i) / float64(n)
				reTw[i] = math.Cos(ang)
				imTw[i] = math.Sin(ang)
			}
			reA := mem.AllocFor(ir.F64, n)
			imA := mem.AllocFor(ir.F64, n)
			rtA := mem.AllocFor(ir.F64, n)
			itA := mem.AllocFor(ir.F64, n)
			writeF64s(mem, reA, real)
			writeF64s(mem, imA, img)
			writeF64s(mem, rtA, reTw)
			writeF64s(mem, itA, imTw)

			// Golden: the same strided algorithm in Go.
			wr := append([]float64(nil), real...)
			wi := append([]float64(nil), img...)
			for lg := 0; lg < logN; lg++ {
				span := n >> (lg + 1)
				for j := 0; j < n; j++ {
					odd := j | span
					if j != odd {
						continue
					}
					even := odd ^ span
					sumR, diffR := wr[even]+wr[odd], wr[even]-wr[odd]
					sumI, diffI := wi[even]+wi[odd], wi[even]-wi[odd]
					wr[even], wr[odd] = sumR, diffR
					wi[even], wi[odd] = sumI, diffI
					if root := (even << lg) & (n - 1); root != 0 {
						nr := reTw[root]*wr[odd] - imTw[root]*wi[odd]
						ni := reTw[root]*wi[odd] + imTw[root]*wr[odd]
						wr[odd], wi[odd] = nr, ni
					}
				}
			}
			return &Instance{
				Args:   []uint64{reA, imA, rtA, itA},
				Bytes:  4 * n * 8,
				InAddr: reA, InBytes: uint64(4 * n * 8),
				OutAddr: reA, OutBytes: uint64(2 * n * 8),
				Check: func(mm *ir.FlatMem) error {
					if err := checkF64(mm, reA, wr, "real"); err != nil {
						return err
					}
					return checkF64(mm, imA, wi, "img")
				},
			}
		},
	}
}
