package kernels

import (
	"fmt"

	"gosalam/ir"
)

// Conv2D builds a single-channel 2D convolution (3x3 kernel, valid
// padding): the first stage of the paper's CNN-layer case study (Fig. 16).
// Output is (h-2) x (w-2).
func Conv2D(h, w int) *Kernel {
	m := ir.NewModule("conv2d")
	b := ir.NewBuilder(m)
	f := b.Func("conv2d", ir.Void,
		ir.P("in", ir.Ptr(ir.F64)), ir.P("weights", ir.Ptr(ir.F64)), ir.P("out", ir.Ptr(ir.F64)))
	in, wt, out := f.Params[0], f.Params[1], f.Params[2]
	W := ir.I64c(int64(w))
	OW := ir.I64c(int64(w - 2))

	// The 3x3 filter loops are fully unrolled into a 9-term multiply tree,
	// as HLS does for constant-bound filter loops: 9 parallel loads per
	// output pixel and a log-depth reduction.
	b.Loop("r", ir.I64c(0), ir.I64c(int64(h-2)), 1, func(r ir.Value) {
		b.Loop("c", ir.I64c(0), ir.I64c(int64(w-2)), 1, func(c ir.Value) {
			var terms []ir.Value
			for k1 := int64(0); k1 < 3; k1++ {
				rowOff := b.Mul(b.Add(r, ir.I64c(k1), "ir"), W, "irw")
				for k2 := int64(0); k2 < 3; k2++ {
					wv := b.Load(b.GEP(wt, "pw", ir.I64c(k1*3+k2)), "wv")
					iv := b.Load(b.GEP(in, "pi",
						b.Add(rowOff, b.Add(c, ir.I64c(k2), "ic"), "ii")), "iv")
					terms = append(terms, b.FMul(wv, iv, "m"))
				}
			}
			for len(terms) > 1 {
				var next []ir.Value
				for k := 0; k+1 < len(terms); k += 2 {
					next = append(next, b.FAdd(terms[k], terms[k+1], "t"))
				}
				if len(terms)%2 == 1 {
					next = append(next, terms[len(terms)-1])
				}
				terms = next
			}
			b.Store(terms[0], b.GEP(out, "po", b.Add(b.Mul(r, OW, "or"), c, "oi")))
		})
	})
	b.Ret(nil)
	verify(f)

	return &Kernel{
		Name: "conv2d",
		M:    m,
		F:    f,
		Setup: func(mem *ir.FlatMem, seed int64) *Instance {
			r := rng(seed)
			img := make([]float64, h*w)
			for i := range img {
				img[i] = r.Float64()*2 - 1
			}
			weights := []float64{1, 0, -1, 2, 0, -2, 1, 0, -1} // Sobel-x
			iA := mem.AllocFor(ir.F64, h*w)
			wA := mem.AllocFor(ir.F64, 9)
			oA := mem.AllocFor(ir.F64, (h-2)*(w-2))
			writeF64s(mem, iA, img)
			writeF64s(mem, wA, weights)
			want := ConvGolden(img, weights, h, w)
			return &Instance{
				Args:   []uint64{iA, wA, oA},
				Bytes:  (h*w + 9 + (h-2)*(w-2)) * 8,
				InAddr: iA, InBytes: uint64(h*w*8) + 72,
				OutAddr: oA, OutBytes: uint64((h - 2) * (w - 2) * 8),
				Check: func(mm *ir.FlatMem) error {
					return checkF64(mm, oA, want, "out")
				},
			}
		},
	}
}

// ConvGolden computes the 3x3 valid convolution reference.
func ConvGolden(img, weights []float64, h, w int) []float64 {
	out := make([]float64, (h-2)*(w-2))
	for r := 0; r < h-2; r++ {
		for c := 0; c < w-2; c++ {
			s := 0.0
			for k1 := 0; k1 < 3; k1++ {
				for k2 := 0; k2 < 3; k2++ {
					s += weights[k1*3+k2] * img[(r+k1)*w+c+k2]
				}
			}
			out[r*(w-2)+c] = s
		}
	}
	return out
}

// ReLU builds the elementwise rectifier: out[i] = max(0, in[i]).
func ReLU(n int) *Kernel {
	m := ir.NewModule("relu")
	b := ir.NewBuilder(m)
	f := b.Func("relu", ir.Void, ir.P("in", ir.Ptr(ir.F64)), ir.P("out", ir.Ptr(ir.F64)))
	in, out := f.Params[0], f.Params[1]
	b.Loop("i", ir.I64c(0), ir.I64c(int64(n)), 1, func(i ir.Value) {
		v := b.Load(b.GEP(in, "pi", i), "v")
		pos := b.FCmp(ir.FOGT, v, ir.F64c(0), "pos")
		b.Store(b.Select(pos, v, ir.F64c(0), "r"), b.GEP(out, "po", i))
	})
	b.Ret(nil)
	verify(f)

	return &Kernel{
		Name: "relu",
		M:    m,
		F:    f,
		Setup: func(mem *ir.FlatMem, seed int64) *Instance {
			r := rng(seed)
			data := make([]float64, n)
			for i := range data {
				data[i] = r.Float64()*2 - 1
			}
			iA := mem.AllocFor(ir.F64, n)
			oA := mem.AllocFor(ir.F64, n)
			writeF64s(mem, iA, data)
			want := ReLUGolden(data)
			return &Instance{
				Args:   []uint64{iA, oA},
				Bytes:  2 * n * 8,
				InAddr: iA, InBytes: uint64(n * 8),
				OutAddr: oA, OutBytes: uint64(n * 8),
				Check: func(mm *ir.FlatMem) error {
					return checkF64(mm, oA, want, "out")
				},
			}
		},
	}
}

// ReLUGolden computes the rectifier reference.
func ReLUGolden(in []float64) []float64 {
	out := make([]float64, len(in))
	for i, v := range in {
		if v > 0 {
			out[i] = v
		}
	}
	return out
}

// MaxPool builds a 2x2/stride-2 max-pool over an h x w grid; h and w must
// be even. Output is (h/2) x (w/2).
func MaxPool(h, w int) *Kernel {
	if h%2 != 0 || w%2 != 0 {
		panic(fmt.Sprintf("kernels: maxpool needs even dims, got %dx%d", h, w))
	}
	m := ir.NewModule("maxpool")
	b := ir.NewBuilder(m)
	f := b.Func("maxpool", ir.Void, ir.P("in", ir.Ptr(ir.F64)), ir.P("out", ir.Ptr(ir.F64)))
	in, out := f.Params[0], f.Params[1]
	W := ir.I64c(int64(w))
	OW := ir.I64c(int64(w / 2))

	b.Loop("r", ir.I64c(0), ir.I64c(int64(h/2)), 1, func(r ir.Value) {
		b.Loop("c", ir.I64c(0), ir.I64c(int64(w/2)), 1, func(c ir.Value) {
			r2 := b.Mul(r, ir.I64c(2), "r2")
			c2 := b.Mul(c, ir.I64c(2), "c2")
			ld := func(dr, dc int64, nm string) ir.Value {
				idx := b.Add(b.Mul(b.Add(r2, ir.I64c(dr), "rr"), W, "rw"),
					b.Add(c2, ir.I64c(dc), "ccx"), "ix")
				return b.Load(b.GEP(in, "p"+nm, idx), nm)
			}
			v00 := ld(0, 0, "v00")
			v01 := ld(0, 1, "v01")
			v10 := ld(1, 0, "v10")
			v11 := ld(1, 1, "v11")
			m1 := b.Call("fmax", ir.F64, "m1", v00, v01)
			m2 := b.Call("fmax", ir.F64, "m2", v10, v11)
			mx := b.Call("fmax", ir.F64, "mx", m1, m2)
			b.Store(mx, b.GEP(out, "po", b.Add(b.Mul(r, OW, "orr"), c, "oi")))
		})
	})
	b.Ret(nil)
	verify(f)

	return &Kernel{
		Name: "maxpool",
		M:    m,
		F:    f,
		Setup: func(mem *ir.FlatMem, seed int64) *Instance {
			r := rng(seed)
			data := make([]float64, h*w)
			for i := range data {
				data[i] = r.Float64()*2 - 1
			}
			iA := mem.AllocFor(ir.F64, h*w)
			oA := mem.AllocFor(ir.F64, (h/2)*(w/2))
			writeF64s(mem, iA, data)
			want := MaxPoolGolden(data, h, w)
			return &Instance{
				Args:   []uint64{iA, oA},
				Bytes:  (h*w + (h/2)*(w/2)) * 8,
				InAddr: iA, InBytes: uint64(h * w * 8),
				OutAddr: oA, OutBytes: uint64((h / 2) * (w / 2) * 8),
				Check: func(mm *ir.FlatMem) error {
					return checkF64(mm, oA, want, "out")
				},
			}
		},
	}
}

// MaxPoolStream builds a 2x2/stride-2 max-pool that consumes its input
// strictly sequentially (row-major), double-buffering two rows in a local
// line buffer — the form needed to sit behind an AXI-Stream-style input in
// the Fig. 16(c) pipeline, where a FIFO delivers elements in order.
func MaxPoolStream(h, w int) *Kernel {
	if h%2 != 0 || w%2 != 0 {
		panic(fmt.Sprintf("kernels: maxpool needs even dims, got %dx%d", h, w))
	}
	m := ir.NewModule("maxpool-stream")
	b := ir.NewBuilder(m)
	f := b.Func("maxpool_stream", ir.Void,
		ir.P("in", ir.Ptr(ir.F64)), ir.P("lines", ir.Ptr(ir.F64)), ir.P("out", ir.Ptr(ir.F64)))
	in, lines, out := f.Params[0], f.Params[1], f.Params[2]
	W := ir.I64c(int64(w))
	W2 := ir.I64c(int64(2 * w))
	OW := ir.I64c(int64(w / 2))

	b.Loop("r", ir.I64c(0), ir.I64c(int64(h/2)), 1, func(r ir.Value) {
		// Fill the two line buffers with the next 2*w sequential inputs.
		rowBase := b.Mul(b.Mul(r, ir.I64c(2), "r2"), W, "rowBase")
		b.Loop("c", ir.I64c(0), W2, 1, func(c ir.Value) {
			v := b.Load(b.GEP(in, "pi", b.Add(rowBase, c, "ii")), "v")
			b.Store(v, b.GEP(lines, "pl", c))
		})
		// Pool from the line buffers.
		b.Loop("o", ir.I64c(0), OW, 1, func(o ir.Value) {
			c2 := b.Mul(o, ir.I64c(2), "c2")
			v00 := b.Load(b.GEP(lines, "p00", c2), "v00")
			v01 := b.Load(b.GEP(lines, "p01", b.Add(c2, ir.I64c(1), "c21")), "v01")
			v10 := b.Load(b.GEP(lines, "p10", b.Add(c2, W, "cw")), "v10")
			v11 := b.Load(b.GEP(lines, "p11", b.Add(b.Add(c2, W, "cw2"), ir.I64c(1), "cw21")), "v11")
			m1 := b.Call("fmax", ir.F64, "m1", v00, v01)
			m2 := b.Call("fmax", ir.F64, "m2", v10, v11)
			mx := b.Call("fmax", ir.F64, "mx", m1, m2)
			b.Store(mx, b.GEP(out, "po", b.Add(b.Mul(r, OW, "orr"), o, "oi")))
		})
	})
	b.Ret(nil)
	verify(f)

	return &Kernel{
		Name: "maxpool-stream",
		M:    m,
		F:    f,
		Setup: func(mem *ir.FlatMem, seed int64) *Instance {
			r := rng(seed)
			data := make([]float64, h*w)
			for i := range data {
				data[i] = r.Float64()*2 - 1
			}
			iA := mem.AllocFor(ir.F64, h*w)
			lA := mem.AllocFor(ir.F64, 2*w)
			oA := mem.AllocFor(ir.F64, (h/2)*(w/2))
			writeF64s(mem, iA, data)
			want := MaxPoolGolden(data, h, w)
			return &Instance{
				Args:   []uint64{iA, lA, oA},
				Bytes:  (h*w + 2*w + (h/2)*(w/2)) * 8,
				InAddr: iA, InBytes: uint64(h * w * 8),
				OutAddr: oA, OutBytes: uint64((h / 2) * (w / 2) * 8),
				Check: func(mm *ir.FlatMem) error {
					return checkF64(mm, oA, want, "out")
				},
			}
		},
	}
}

// MaxPoolGolden computes the 2x2 max-pool reference.
func MaxPoolGolden(in []float64, h, w int) []float64 {
	out := make([]float64, (h/2)*(w/2))
	for r := 0; r < h/2; r++ {
		for c := 0; c < w/2; c++ {
			mx := in[2*r*w+2*c]
			for _, v := range []float64{in[2*r*w+2*c+1], in[(2*r+1)*w+2*c], in[(2*r+1)*w+2*c+1]} {
				if v > mx {
					mx = v
				}
			}
			out[r*(w/2)+c] = mx
		}
	}
	return out
}
