// Package kernels provides the MachSuite benchmark kernels the paper
// validates gem5-SALAM on — BFS, FFT (strided), GEMM (n-cubed), MD-KNN,
// MD-Grid, NW, SPMV-CRS, Stencil2D, Stencil3D — plus the CNN-layer kernels
// (conv2d, ReLU, max-pool) of the multi-accelerator study, each as an IR
// builder with deterministic input generators and golden Go reference
// implementations. Goldens make every simulation functionally checkable,
// which is the point of an execute-in-execute model.
package kernels

import (
	"fmt"
	"math/rand"

	"gosalam/ir"
)

// Kernel is one accelerator benchmark: an IR function plus a workload
// generator.
type Kernel struct {
	Name string
	M    *ir.Module
	F    *ir.Function
	// Setup allocates and initializes the kernel's buffers in mem
	// (using its allocation cursor) and returns the run instance.
	Setup func(mem *ir.FlatMem, seed int64) *Instance
}

// Instance is one prepared invocation: argument bits, a golden checker,
// and bookkeeping for experiments.
type Instance struct {
	Args []uint64
	// Check verifies the outputs against the golden model.
	Check func(mem *ir.FlatMem) error
	// Bytes is the approximate data footprint (for sizing memories).
	Bytes int
	// In/Out name the primary input and output buffers for DMA staging.
	InAddr, InBytes   uint64
	OutAddr, OutBytes uint64
}

// verify panics on malformed generated IR — a kernel construction bug.
func verify(f *ir.Function) {
	if err := ir.Verify(f); err != nil {
		panic(fmt.Sprintf("kernels: %s: %v", f.Name(), err))
	}
}

// rng returns a deterministic generator for workload data.
func rng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// Preset selects workload sizes.
type Preset int

// Presets: Small keeps go test fast; Default matches the bench harness;
// Micro is the proxy tier — the smallest instance of each kernel that
// still exercises its full control structure, used as a cheap ranking
// stand-in for the real workload (see ProxyOf); Large is the sampled
// tier — problem sizes big enough that interval-sampled simulation
// (RunOpts.Sample) pays off, and the target of the sampled benchmarks.
const (
	Small Preset = iota
	Default
	Micro
	Large
)

// All returns the full MachSuite set at a preset size, in the order the
// paper's figures list them.
func All(p Preset) []*Kernel {
	switch p {
	case Small:
		return []*Kernel{
			BFS(64, 4), FFT(64), GEMM(8, 1), MDKnn(16, 16), MDGrid(2, 4),
			NW(16), SPMV(32, 4), Stencil2D(12, 12), Stencil3D(6, 6, 6),
		}
	case Micro:
		return []*Kernel{
			BFS(16, 4), FFT(16), GEMM(4, 1), MDKnn(8, 8), MDGrid(2, 2),
			NW(8), SPMV(16, 4), Stencil2D(6, 6), Stencil3D(4, 4, 4),
		}
	case Large:
		return []*Kernel{
			BFS(1024, 4), FFT(1024), GEMM(96, 1), MDKnn(256, 16), MDGrid(4, 8),
			NW(96), SPMV(512, 5), Stencil2D(64, 64), Stencil3D(24, 24, 24),
		}
	default:
		return []*Kernel{
			BFS(256, 4), FFT(256), GEMM(24, 1), MDKnn(64, 16), MDGrid(3, 6),
			NW(48), SPMV(128, 5), Stencil2D(32, 32), Stencil3D(12, 12, 12),
		}
	}
}

// Extras returns the variant and CNN kernels at a preset size: the
// Table I probe, the Table II / DSE GEMM variants, and the Fig. 16 layer.
func Extras(p Preset) []*Kernel {
	switch p {
	case Small:
		return []*Kernel{
			SPMVCondShift(32, 4), GEMMUnrolledInner(6), GEMMTree(8), BFSQueue(64, 4),
			Conv2D(18, 18), ReLU(256), MaxPool(16, 16), MaxPoolStream(16, 16),
		}
	case Micro:
		return []*Kernel{
			SPMVCondShift(16, 4), GEMMUnrolledInner(4), GEMMTree(4), BFSQueue(16, 4),
			Conv2D(10, 10), ReLU(64), MaxPool(8, 8), MaxPoolStream(8, 8),
		}
	case Large:
		return []*Kernel{
			SPMVCondShift(512, 5), GEMMUnrolledInner(24), GEMMTree(128), BFSQueue(1024, 4),
			Conv2D(66, 66), ReLU(4096), MaxPool(64, 64), MaxPoolStream(64, 64),
		}
	default:
		return []*Kernel{
			SPMVCondShift(128, 5), GEMMUnrolledInner(10), GEMMTree(32), BFSQueue(256, 4),
			Conv2D(34, 34), ReLU(1024), MaxPool(32, 32), MaxPoolStream(32, 32),
		}
	}
}

// ProxyOf returns the reduced-trip proxy of a named kernel: the Micro
// instance of the same kernel family (nil when none exists). A proxy
// shares the kernel's IR structure with shorter, provably-counted loop
// trips, so a proxy measurement ranks configurations cheaply; it is never
// a substitute for the full run's numbers.
func ProxyOf(name string) *Kernel { return ByName(Micro, name) }

// ByName returns a kernel from All(p) or Extras(p) by name (nil if absent).
func ByName(p Preset, name string) *Kernel {
	for _, k := range All(p) {
		if k.Name == name {
			return k
		}
	}
	for _, k := range Extras(p) {
		if k.Name == name {
			return k
		}
	}
	return nil
}

func almostEqual(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	scale := 1.0
	if a > scale {
		scale = a
	}
	if -a > scale {
		scale = -a
	}
	return d <= 1e-9*scale
}

func checkF64(mem *ir.FlatMem, addr uint64, want []float64, what string) error {
	for i, w := range want {
		got := mem.ReadF64(addr + uint64(i*8))
		if !almostEqual(got, w) {
			return fmt.Errorf("%s[%d] = %g, want %g", what, i, got, w)
		}
	}
	return nil
}

func checkI64(mem *ir.FlatMem, addr uint64, want []int64, what string) error {
	for i, w := range want {
		got := mem.ReadI64(addr + uint64(i*8))
		if got != w {
			return fmt.Errorf("%s[%d] = %d, want %d", what, i, got, w)
		}
	}
	return nil
}

func writeF64s(mem *ir.FlatMem, addr uint64, vals []float64) {
	for i, v := range vals {
		mem.WriteF64(addr+uint64(i*8), v)
	}
}

func writeI64s(mem *ir.FlatMem, addr uint64, vals []int64) {
	for i, v := range vals {
		mem.WriteI64(addr+uint64(i*8), v)
	}
}
