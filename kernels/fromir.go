package kernels

import (
	"fmt"

	"gosalam/ir"
)

// FromIR wraps a function from an externally produced LLVM-IR module
// (e.g. clang `-O1 -S -emit-llvm` output parsed by ir.Parse) as a Kernel,
// borrowing the workload — input data, golden Check, DMA extents — of a
// built-in kernel with the same signature. The entry function is verified
// and its signature checked parameter-by-parameter against the workload's,
// so a mismatched kernel fails at load time, not mid-simulation.
func FromIR(name string, m *ir.Module, entry string, workload *Kernel) (*Kernel, error) {
	if workload == nil {
		return nil, fmt.Errorf("kernels: FromIR %s: nil workload", name)
	}
	f := m.Func(entry)
	if f == nil {
		return nil, fmt.Errorf("kernels: FromIR %s: module %s has no function %q", name, m.Name, entry)
	}
	if err := ir.Verify(f); err != nil {
		return nil, fmt.Errorf("kernels: FromIR %s: %w", name, err)
	}
	wf := workload.F
	if len(f.Params) != len(wf.Params) {
		return nil, fmt.Errorf("kernels: FromIR %s: %s takes %d params, workload %s takes %d",
			name, entry, len(f.Params), workload.Name, len(wf.Params))
	}
	for i, p := range f.Params {
		if !ir.Equal(p.Type(), wf.Params[i].Type()) {
			return nil, fmt.Errorf("kernels: FromIR %s: param %d is %s, workload %s expects %s",
				name, i, p.Type(), workload.Name, wf.Params[i].Type())
		}
	}
	return &Kernel{Name: name, M: m, F: f, Setup: workload.Setup}, nil
}
