package kernels

import (
	"gosalam/ir"
)

// spmvBuild constructs SPMV over CRS with an optional conditional-shift
// (the paper's Table I probe: a shifter that only appears in a runtime
// trace when the input data triggers it).
func spmvBuild(name string, n, nnzPerRow int, condShift bool) *Kernel {
	m := ir.NewModule(name)
	b := ir.NewBuilder(m)
	params := []*ir.Param{
		ir.P("val", ir.Ptr(ir.F64)), ir.P("cols", ir.Ptr(ir.I64)),
		ir.P("rowDelim", ir.Ptr(ir.I64)), ir.P("vec", ir.Ptr(ir.F64)),
		ir.P("out", ir.Ptr(ir.F64)),
	}
	if condShift {
		params = append(params, ir.P("flags", ir.Ptr(ir.I64)))
	}
	f := b.Func("spmv", ir.Void, params...)
	val, cols, rowD, vec, out := f.Params[0], f.Params[1], f.Params[2], f.Params[3], f.Params[4]

	b.Loop("i", ir.I64c(0), ir.I64c(int64(n)), 1, func(i ir.Value) {
		lo := b.Load(b.GEP(rowD, "plo", i), "lo")
		hi := b.Load(b.GEP(rowD, "phi", b.Add(i, ir.I64c(1), "i1")), "hi")
		// Irregular inner loop: bounds come from the data.
		sum := b.LoopCarried("j", lo, hi, 1, []ir.Value{ir.F64c(0)},
			func(j ir.Value, cv []ir.Value) []ir.Value {
				v := b.Load(b.GEP(val, "pv", j), "v")
				c := b.Load(b.GEP(cols, "pcl", j), "c")
				x := b.Load(b.GEP(vec, "px", c), "x")
				acc := b.FAdd(cv[0], b.FMul(v, x, "prod"), "acc")
				if condShift {
					// The probe: when val > 1.0, record cols[j] << 1 —
					// a shift that exists in the trace only for datasets
					// containing such values.
					big := b.FCmp(ir.FOGT, v, ir.F64c(1.0), "big")
					b.If(big, "shift", func() {
						sh := b.Shl(c, ir.I64c(1), "sh")
						b.Store(sh, b.GEP(f.Params[5], "pf", i))
					})
				}
				return []ir.Value{acc}
			})
		b.Store(sum[0], b.GEP(out, "po", i))
	})
	b.Ret(nil)
	verify(f)

	nnz := n * nnzPerRow
	return &Kernel{
		Name: name,
		M:    m,
		F:    f,
		Setup: func(mem *ir.FlatMem, seed int64) *Instance {
			r := rng(seed)
			vals := make([]float64, nnz)
			colIdx := make([]int64, nnz)
			rowDelim := make([]int64, n+1)
			for i := 0; i <= n; i++ {
				rowDelim[i] = int64(i * nnzPerRow)
			}
			for i := range vals {
				vals[i] = r.Float64() // in [0,1): never triggers the shift
				colIdx[i] = int64(r.Intn(n))
			}
			// Seed parity selects the dataset family: odd seeds include
			// values > 1.0 that trigger the conditional shift (Table I's
			// "dataset 2").
			if seed%2 == 1 {
				for i := 0; i < len(vals); i += 7 {
					vals[i] = 1.5 + r.Float64()
				}
			}
			x := make([]float64, n)
			for i := range x {
				x[i] = r.Float64()*2 - 1
			}

			valA := mem.AllocFor(ir.F64, nnz)
			colA := mem.AllocFor(ir.I64, nnz)
			rowA := mem.AllocFor(ir.I64, n+1)
			vecA := mem.AllocFor(ir.F64, n)
			outA := mem.AllocFor(ir.F64, n)
			writeF64s(mem, valA, vals)
			writeI64s(mem, colA, colIdx)
			writeI64s(mem, rowA, rowDelim)
			writeF64s(mem, vecA, x)
			args := []uint64{valA, colA, rowA, vecA, outA}

			want := make([]float64, n)
			wantFlags := make([]int64, n)
			for i := 0; i < n; i++ {
				s := 0.0
				for j := rowDelim[i]; j < rowDelim[i+1]; j++ {
					s += vals[j] * x[colIdx[j]]
					if condShift && vals[j] > 1.0 {
						wantFlags[i] = colIdx[j] << 1
					}
				}
				want[i] = s
			}
			var flagA uint64
			if condShift {
				flagA = mem.AllocFor(ir.I64, n)
				args = append(args, flagA)
			}
			return &Instance{
				Args:   args,
				Bytes:  (nnz*2 + n*3 + 1) * 8,
				InAddr: valA, InBytes: vecA + uint64(n*8) - valA,
				OutAddr: outA, OutBytes: uint64(n * 8),
				Check: func(mm *ir.FlatMem) error {
					if err := checkF64(mm, outA, want, "out"); err != nil {
						return err
					}
					if condShift {
						return checkI64(mm, flagA, wantFlags, "flags")
					}
					return nil
				},
			}
		},
	}
}

// SPMV builds the MachSuite spmv/crs kernel: y = A·x with A in compact
// row storage. The inner-loop trip counts are data-dependent, making it
// the paper's canonical irregular kernel.
func SPMV(n, nnzPerRow int) *Kernel {
	return spmvBuild("spmv", n, nnzPerRow, false)
}

// SPMVCondShift is the Table I variant with the data-activated shift.
func SPMVCondShift(n, nnzPerRow int) *Kernel {
	return spmvBuild("spmv-condshift", n, nnzPerRow, true)
}
