package kernels

import "fmt"

// Construct builds a kernel family at an explicit size — the hook that
// lets declarative SoC configs pin exact workload dimensions instead of
// picking a preset (e.g. the Fig. 16 CNN layers at a 12x12 image). The
// size slice carries the same arguments as the Go constructor; optional
// trailing arguments take the constructor's documented default.
func Construct(name string, size []int) (k *Kernel, err error) {
	arity := func(min, max int) error {
		if len(size) < min || len(size) > max {
			if min == max {
				return fmt.Errorf("kernels: %s takes %d size arguments, got %d", name, min, len(size))
			}
			return fmt.Errorf("kernels: %s takes %d-%d size arguments, got %d", name, min, max, len(size))
		}
		for i, v := range size {
			if v <= 0 {
				return fmt.Errorf("kernels: %s size[%d] = %d, must be positive", name, i, v)
			}
		}
		return nil
	}
	opt := func(i, def int) int {
		if i < len(size) {
			return size[i]
		}
		return def
	}
	// Several constructors panic on invalid shapes (odd maxpool dims,
	// non-power-of-two trees); surface those as errors, not crashes.
	defer func() {
		if r := recover(); r != nil {
			k, err = nil, fmt.Errorf("kernels: %s%v: %v", name, size, r)
		}
	}()
	switch name {
	case "gemm":
		if err := arity(1, 2); err != nil {
			return nil, err
		}
		return GEMM(size[0], opt(1, 1)), nil
	case "gemm-unrolled":
		if err := arity(1, 1); err != nil {
			return nil, err
		}
		return GEMMUnrolledInner(size[0]), nil
	case "gemm-tree":
		if err := arity(1, 1); err != nil {
			return nil, err
		}
		return GEMMTree(size[0]), nil
	case "spmv":
		if err := arity(1, 2); err != nil {
			return nil, err
		}
		return SPMV(size[0], opt(1, 4)), nil
	case "spmv-condshift":
		if err := arity(1, 2); err != nil {
			return nil, err
		}
		return SPMVCondShift(size[0], opt(1, 4)), nil
	case "bfs":
		if err := arity(1, 2); err != nil {
			return nil, err
		}
		return BFS(size[0], opt(1, 4)), nil
	case "bfs-queue":
		if err := arity(1, 2); err != nil {
			return nil, err
		}
		return BFSQueue(size[0], opt(1, 4)), nil
	case "fft":
		if err := arity(1, 1); err != nil {
			return nil, err
		}
		return FFT(size[0]), nil
	case "md-knn":
		if err := arity(2, 2); err != nil {
			return nil, err
		}
		return MDKnn(size[0], size[1]), nil
	case "md-grid":
		if err := arity(2, 2); err != nil {
			return nil, err
		}
		return MDGrid(size[0], size[1]), nil
	case "nw":
		if err := arity(1, 1); err != nil {
			return nil, err
		}
		return NW(size[0]), nil
	case "conv2d":
		if err := arity(2, 2); err != nil {
			return nil, err
		}
		return Conv2D(size[0], size[1]), nil
	case "relu":
		if err := arity(1, 1); err != nil {
			return nil, err
		}
		return ReLU(size[0]), nil
	case "maxpool":
		if err := arity(2, 2); err != nil {
			return nil, err
		}
		return MaxPool(size[0], size[1]), nil
	case "maxpool-stream":
		if err := arity(2, 2); err != nil {
			return nil, err
		}
		return MaxPoolStream(size[0], size[1]), nil
	case "stencil2d":
		if err := arity(2, 2); err != nil {
			return nil, err
		}
		return Stencil2D(size[0], size[1]), nil
	case "stencil3d":
		if err := arity(3, 3); err != nil {
			return nil, err
		}
		return Stencil3D(size[0], size[1], size[2]), nil
	default:
		return nil, fmt.Errorf("kernels: unknown kernel family %q", name)
	}
}
