package kernels

import (
	"gosalam/ir"
)

// Stencil2D builds the MachSuite stencil/stencil2d kernel: a 3x3 filter
// convolution over a rows x cols grid of doubles, writing the valid
// interior of the output.
func Stencil2D(rows, cols int) *Kernel {
	m := ir.NewModule("stencil2d")
	b := ir.NewBuilder(m)
	f := b.Func("stencil2d", ir.Void,
		ir.P("orig", ir.Ptr(ir.F64)), ir.P("sol", ir.Ptr(ir.F64)), ir.P("filter", ir.Ptr(ir.F64)))
	orig, sol, filt := f.Params[0], f.Params[1], f.Params[2]
	C := ir.I64c(int64(cols))

	b.Loop("r", ir.I64c(0), ir.I64c(int64(rows-2)), 1, func(rr ir.Value) {
		b.Loop("c", ir.I64c(0), ir.I64c(int64(cols-2)), 1, func(cc ir.Value) {
			acc := b.LoopCarried("k1", ir.I64c(0), ir.I64c(3), 1, []ir.Value{ir.F64c(0)},
				func(k1 ir.Value, cv []ir.Value) []ir.Value {
					inner := b.LoopCarried("k2", ir.I64c(0), ir.I64c(3), 1, []ir.Value{cv[0]},
						func(k2 ir.Value, cw []ir.Value) []ir.Value {
							fIdx := b.Add(b.Mul(k1, ir.I64c(3), "f3"), k2, "fi")
							fv := b.Load(b.GEP(filt, "pf", fIdx), "fv")
							gIdx := b.Add(b.Mul(b.Add(rr, k1, "gr"), C, "grow"),
								b.Add(cc, k2, "gc"), "gi")
							gv := b.Load(b.GEP(orig, "pg", gIdx), "gv")
							return []ir.Value{b.FAdd(cw[0], b.FMul(fv, gv, "mul"), "acc")}
						})
					return []ir.Value{inner[0]}
				})
			outIdx := b.Add(b.Mul(rr, C, "orow"), cc, "oi")
			b.Store(acc[0], b.GEP(sol, "ps", outIdx))
		})
	})
	b.Ret(nil)
	verify(f)

	return &Kernel{
		Name: "stencil2d",
		M:    m,
		F:    f,
		Setup: func(mem *ir.FlatMem, seed int64) *Instance {
			r := rng(seed)
			grid := make([]float64, rows*cols)
			for i := range grid {
				grid[i] = r.Float64()*2 - 1
			}
			filter := []float64{0.0625, 0.125, 0.0625, 0.125, 0.25, 0.125, 0.0625, 0.125, 0.0625}
			oA := mem.AllocFor(ir.F64, rows*cols)
			sA := mem.AllocFor(ir.F64, rows*cols)
			fA := mem.AllocFor(ir.F64, 9)
			writeF64s(mem, oA, grid)
			writeF64s(mem, fA, filter)

			want := make([]float64, rows*cols)
			for rr := 0; rr < rows-2; rr++ {
				for cc := 0; cc < cols-2; cc++ {
					s := 0.0
					for k1 := 0; k1 < 3; k1++ {
						for k2 := 0; k2 < 3; k2++ {
							s += filter[k1*3+k2] * grid[(rr+k1)*cols+cc+k2]
						}
					}
					want[rr*cols+cc] = s
				}
			}
			return &Instance{
				Args:   []uint64{oA, sA, fA},
				Bytes:  (2*rows*cols + 9) * 8,
				InAddr: oA, InBytes: uint64(rows*cols*8) + 72,
				OutAddr: sA, OutBytes: uint64(rows * cols * 8),
				Check: func(mm *ir.FlatMem) error {
					return checkF64(mm, sA, want, "sol")
				},
			}
		},
	}
}

// Stencil3D builds the MachSuite stencil/stencil3d kernel: a 7-point
// stencil over an X x Y x Z integer-indexed grid of doubles. Boundary
// cells are copied through; interior cells combine the six face
// neighbors and the center with two coefficients.
func Stencil3D(nx, ny, nz int) *Kernel {
	const c0, c1 = 0.5, 0.0833
	m := ir.NewModule("stencil3d")
	b := ir.NewBuilder(m)
	f := b.Func("stencil3d", ir.Void,
		ir.P("orig", ir.Ptr(ir.F64)), ir.P("sol", ir.Ptr(ir.F64)))
	orig, sol := f.Params[0], f.Params[1]
	NX, NY := ir.I64c(int64(nx)), ir.I64c(int64(ny))
	idx := func(x, y, z ir.Value) ir.Value {
		// linear = (z*ny + y)*nx + x
		return b.Add(b.Mul(b.Add(b.Mul(z, NY, "zy"), y, "zyy"), NX, "zyx"), x, "lin")
	}

	// Copy boundaries, then compute interior.
	b.Loop("z", ir.I64c(0), ir.I64c(int64(nz)), 1, func(z ir.Value) {
		b.Loop("y", ir.I64c(0), ir.I64c(int64(ny)), 1, func(y ir.Value) {
			b.Loop("x", ir.I64c(0), ir.I64c(int64(nx)), 1, func(x ir.Value) {
				i := idx(x, y, z)
				onBx := b.Or(b.ICmp(ir.IEQ, x, ir.I64c(0), "x0"),
					b.ICmp(ir.IEQ, x, ir.I64c(int64(nx-1)), "x1"), "bx")
				onBy := b.Or(b.ICmp(ir.IEQ, y, ir.I64c(0), "y0"),
					b.ICmp(ir.IEQ, y, ir.I64c(int64(ny-1)), "y1"), "by")
				onBz := b.Or(b.ICmp(ir.IEQ, z, ir.I64c(0), "z0"),
					b.ICmp(ir.IEQ, z, ir.I64c(int64(nz-1)), "z1"), "bz")
				onB := b.Or(b.Or(onBx, onBy, "bxy"), onBz, "bnd")
				b.IfElse(onB, "edge", func() {
					b.Store(b.Load(b.GEP(orig, "pb", i), "bv"), b.GEP(sol, "sb", i))
				}, func() {
					center := b.Load(b.GEP(orig, "pc", i), "cv")
					sum := b.FAdd(
						b.FAdd(
							b.FAdd(b.Load(b.GEP(orig, "pxm", idx(b.Sub(x, ir.I64c(1), "xm"), y, z)), "vxm"),
								b.Load(b.GEP(orig, "pxp", idx(b.Add(x, ir.I64c(1), "xp"), y, z)), "vxp"), "sx"),
							b.FAdd(b.Load(b.GEP(orig, "pym", idx(x, b.Sub(y, ir.I64c(1), "ym"), z)), "vym"),
								b.Load(b.GEP(orig, "pyp", idx(x, b.Add(y, ir.I64c(1), "yp"), z)), "vyp"), "sy"), "sxy"),
						b.FAdd(b.Load(b.GEP(orig, "pzm", idx(x, y, b.Sub(z, ir.I64c(1), "zm"))), "vzm"),
							b.Load(b.GEP(orig, "pzp", idx(x, y, b.Add(z, ir.I64c(1), "zp"))), "vzp"), "sz"), "sum")
					out := b.FAdd(b.FMul(center, ir.F64c(c0), "c0v"),
						b.FMul(sum, ir.F64c(c1), "c1v"), "out")
					b.Store(out, b.GEP(sol, "po", i))
				})
			})
		})
	})
	b.Ret(nil)
	verify(f)

	return &Kernel{
		Name: "stencil3d",
		M:    m,
		F:    f,
		Setup: func(mem *ir.FlatMem, seed int64) *Instance {
			r := rng(seed)
			total := nx * ny * nz
			grid := make([]float64, total)
			for i := range grid {
				grid[i] = r.Float64()*2 - 1
			}
			oA := mem.AllocFor(ir.F64, total)
			sA := mem.AllocFor(ir.F64, total)
			writeF64s(mem, oA, grid)

			lin := func(x, y, z int) int { return (z*ny+y)*nx + x }
			want := make([]float64, total)
			for z := 0; z < nz; z++ {
				for y := 0; y < ny; y++ {
					for x := 0; x < nx; x++ {
						i := lin(x, y, z)
						if x == 0 || x == nx-1 || y == 0 || y == ny-1 || z == 0 || z == nz-1 {
							want[i] = grid[i]
							continue
						}
						sum := grid[lin(x-1, y, z)] + grid[lin(x+1, y, z)] +
							grid[lin(x, y-1, z)] + grid[lin(x, y+1, z)] +
							grid[lin(x, y, z-1)] + grid[lin(x, y, z+1)]
						want[i] = c0*grid[i] + c1*sum
					}
				}
			}
			return &Instance{
				Args:   []uint64{oA, sA},
				Bytes:  2 * total * 8,
				InAddr: oA, InBytes: uint64(total * 8),
				OutAddr: sA, OutBytes: uint64(total * 8),
				Check: func(mm *ir.FlatMem) error {
					return checkF64(mm, sA, want, "sol")
				},
			}
		},
	}
}
