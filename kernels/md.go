package kernels

import (
	"gosalam/ir"
)

// MDKnn builds the MachSuite md/knn kernel: Lennard-Jones forces for each
// atom over a precomputed k-nearest-neighbor list. Heavily floating-point
// bound (fmul/fdiv chains) — the paper's worst-case timing benchmark
// (Fig. 10) because HLS aggressively reuses FP units there.
func MDKnn(nAtoms, nNeighbors int) *Kernel {
	m := ir.NewModule("md-knn")
	b := ir.NewBuilder(m)
	f := b.Func("md_kernel", ir.Void,
		ir.P("forceX", ir.Ptr(ir.F64)), ir.P("forceY", ir.Ptr(ir.F64)), ir.P("forceZ", ir.Ptr(ir.F64)),
		ir.P("posX", ir.Ptr(ir.F64)), ir.P("posY", ir.Ptr(ir.F64)), ir.P("posZ", ir.Ptr(ir.F64)),
		ir.P("NL", ir.Ptr(ir.I64)))
	fx, fy, fz := f.Params[0], f.Params[1], f.Params[2]
	px, py, pz := f.Params[3], f.Params[4], f.Params[5]
	nl := f.Params[6]
	const lj1, lj2 = 1.5, 2.0

	b.Loop("i", ir.I64c(0), ir.I64c(int64(nAtoms)), 1, func(i ir.Value) {
		xi := b.Load(b.GEP(px, "pxi", i), "xi")
		yi := b.Load(b.GEP(py, "pyi", i), "yi")
		zi := b.Load(b.GEP(pz, "pzi", i), "zi")
		base := b.Mul(i, ir.I64c(int64(nNeighbors)), "nlBase")
		acc := b.LoopCarried("j", ir.I64c(0), ir.I64c(int64(nNeighbors)), 1,
			[]ir.Value{ir.F64c(0), ir.F64c(0), ir.F64c(0)},
			func(j ir.Value, cv []ir.Value) []ir.Value {
				jidx := b.Load(b.GEP(nl, "pnl", b.Add(base, j, "nli")), "jidx")
				dx := b.FSub(xi, b.Load(b.GEP(px, "pxj", jidx), "xj"), "dx")
				dy := b.FSub(yi, b.Load(b.GEP(py, "pyj", jidx), "yj"), "dy")
				dz := b.FSub(zi, b.Load(b.GEP(pz, "pzj", jidx), "zj"), "dz")
				r2 := b.FAdd(b.FAdd(b.FMul(dx, dx, "dx2"), b.FMul(dy, dy, "dy2"), "s1"),
					b.FMul(dz, dz, "dz2"), "r2")
				r2inv := b.FDiv(ir.F64c(1), r2, "r2inv")
				r6inv := b.FMul(b.FMul(r2inv, r2inv, "r4"), r2inv, "r6inv")
				pot := b.FMul(r6inv,
					b.FSub(b.FMul(ir.F64c(lj1), r6inv, "l1r6"), ir.F64c(lj2), "inner"), "pot")
				force := b.FMul(r2inv, pot, "force")
				return []ir.Value{
					b.FAdd(cv[0], b.FMul(dx, force, "fxd"), "axn"),
					b.FAdd(cv[1], b.FMul(dy, force, "fyd"), "ayn"),
					b.FAdd(cv[2], b.FMul(dz, force, "fzd"), "azn"),
				}
			})
		b.Store(acc[0], b.GEP(fx, "pfx", i))
		b.Store(acc[1], b.GEP(fy, "pfy", i))
		b.Store(acc[2], b.GEP(fz, "pfz", i))
	})
	b.Ret(nil)
	verify(f)

	return &Kernel{
		Name: "md-knn",
		M:    m,
		F:    f,
		Setup: func(mem *ir.FlatMem, seed int64) *Instance {
			r := rng(seed)
			n := nAtoms
			X := make([]float64, n)
			Y := make([]float64, n)
			Z := make([]float64, n)
			for i := 0; i < n; i++ {
				X[i] = r.Float64() * 10
				Y[i] = r.Float64() * 10
				Z[i] = r.Float64() * 10
			}
			NL := make([]int64, n*nNeighbors)
			for i := 0; i < n; i++ {
				for j := 0; j < nNeighbors; j++ {
					// Any distinct atom works as a "neighbor".
					nb := (i + 1 + r.Intn(n-1)) % n
					NL[i*nNeighbors+j] = int64(nb)
				}
			}
			fxA := mem.AllocFor(ir.F64, n)
			fyA := mem.AllocFor(ir.F64, n)
			fzA := mem.AllocFor(ir.F64, n)
			pxA := mem.AllocFor(ir.F64, n)
			pyA := mem.AllocFor(ir.F64, n)
			pzA := mem.AllocFor(ir.F64, n)
			nlA := mem.AllocFor(ir.I64, n*nNeighbors)
			writeF64s(mem, pxA, X)
			writeF64s(mem, pyA, Y)
			writeF64s(mem, pzA, Z)
			writeI64s(mem, nlA, NL)

			wantX := make([]float64, n)
			wantY := make([]float64, n)
			wantZ := make([]float64, n)
			for i := 0; i < n; i++ {
				var ax, ay, az float64
				for j := 0; j < nNeighbors; j++ {
					jidx := NL[i*nNeighbors+j]
					dx := X[i] - X[jidx]
					dy := Y[i] - Y[jidx]
					dz := Z[i] - Z[jidx]
					r2 := dx*dx + dy*dy + dz*dz
					r2inv := 1.0 / r2
					r6inv := r2inv * r2inv * r2inv
					pot := r6inv * (lj1*r6inv - lj2)
					force := r2inv * pot
					ax += dx * force
					ay += dy * force
					az += dz * force
				}
				wantX[i], wantY[i], wantZ[i] = ax, ay, az
			}
			return &Instance{
				Args:   []uint64{fxA, fyA, fzA, pxA, pyA, pzA, nlA},
				Bytes:  (6*n + n*nNeighbors) * 8,
				InAddr: pxA, InBytes: nlA + uint64(n*nNeighbors*8) - pxA,
				OutAddr: fxA, OutBytes: uint64(3 * n * 8),
				Check: func(mm *ir.FlatMem) error {
					if err := checkF64(mm, fxA, wantX, "fx"); err != nil {
						return err
					}
					if err := checkF64(mm, fyA, wantY, "fy"); err != nil {
						return err
					}
					return checkF64(mm, fzA, wantZ, "fz")
				},
			}
		},
	}
}

// MDGrid builds the MachSuite md/grid kernel: Lennard-Jones interactions
// between particles in adjacent cells of a 3D spatial grid — a deep
// counted-loop nest (6 levels) over blocks, neighbor cells, and particle
// pairs.
func MDGrid(blockSide, density int) *Kernel {
	m := ir.NewModule("md-grid")
	b := ir.NewBuilder(m)
	// Positions and forces are [cell][particle] arrays, flattened.
	f := b.Func("md_grid", ir.Void,
		ir.P("nPoints", ir.Ptr(ir.I64)),
		ir.P("posX", ir.Ptr(ir.F64)), ir.P("posY", ir.Ptr(ir.F64)), ir.P("posZ", ir.Ptr(ir.F64)),
		ir.P("frcX", ir.Ptr(ir.F64)), ir.P("frcY", ir.Ptr(ir.F64)), ir.P("frcZ", ir.Ptr(ir.F64)))
	nP := f.Params[0]
	px, py, pz := f.Params[1], f.Params[2], f.Params[3]
	gx, gy, gz := f.Params[4], f.Params[5], f.Params[6]
	side := int64(blockSide)
	S := ir.I64c(side)
	D := ir.I64c(int64(density))
	const lj1, lj2 = 1.5, 2.0

	cellIdx := func(bx, by, bz ir.Value) ir.Value {
		return b.Add(b.Mul(b.Add(b.Mul(bx, S, "cx"), by, "cxy"), S, "cxyz"), bz, "cell")
	}
	b.Loop("bx", ir.I64c(0), S, 1, func(bx ir.Value) {
		b.Loop("by", ir.I64c(0), S, 1, func(by ir.Value) {
			b.Loop("bz", ir.I64c(0), S, 1, func(bz ir.Value) {
				home := cellIdx(bx, by, bz)
				homeBase := b.Mul(home, D, "homeBase")
				nHome := b.Load(b.GEP(nP, "pnh", home), "nHome")
				// Neighbor cells within +/-1 in each dimension (clamped).
				b.Loop("nx", ir.I64c(-1), ir.I64c(2), 1, func(dxi ir.Value) {
					b.Loop("ny", ir.I64c(-1), ir.I64c(2), 1, func(dyi ir.Value) {
						b.Loop("nz", ir.I64c(-1), ir.I64c(2), 1, func(dzi ir.Value) {
							tx := b.Add(bx, dxi, "tx")
							ty := b.Add(by, dyi, "ty")
							tz := b.Add(bz, dzi, "tz")
							inX := b.And(b.ICmp(ir.ISGE, tx, ir.I64c(0), "x0"),
								b.ICmp(ir.ISLT, tx, S, "x1"), "inX")
							inY := b.And(b.ICmp(ir.ISGE, ty, ir.I64c(0), "y0"),
								b.ICmp(ir.ISLT, ty, S, "y1"), "inY")
							inZ := b.And(b.ICmp(ir.ISGE, tz, ir.I64c(0), "z0"),
								b.ICmp(ir.ISLT, tz, S, "z1"), "inZ")
							ok := b.And(b.And(inX, inY, "inXY"), inZ, "inCell")
							b.If(ok, "nb", func() {
								nbr := cellIdx(tx, ty, tz)
								nbrBase := b.Mul(nbr, D, "nbrBase")
								nNbr := b.Load(b.GEP(nP, "pnn", nbr), "nNbr")
								b.Loop("p", ir.I64c(0), nHome, 1, func(p ir.Value) {
									ip := b.Add(homeBase, p, "ip")
									xi := b.Load(b.GEP(px, "pxi", ip), "xi")
									yi := b.Load(b.GEP(py, "pyi", ip), "yi")
									zi := b.Load(b.GEP(pz, "pzi", ip), "zi")
									acc := b.LoopCarried("q", ir.I64c(0), nNbr, 1,
										[]ir.Value{ir.F64c(0), ir.F64c(0), ir.F64c(0)},
										func(qv ir.Value, cv []ir.Value) []ir.Value {
											iq := b.Add(nbrBase, qv, "iq")
											// Skip self-interaction.
											same := b.ICmp(ir.IEQ, ip, iq, "same")
											dx := b.FSub(xi, b.Load(b.GEP(px, "pxq", iq), "xq"), "dx")
											dy := b.FSub(yi, b.Load(b.GEP(py, "pyq", iq), "yq"), "dy")
											dz := b.FSub(zi, b.Load(b.GEP(pz, "pzq", iq), "zq"), "dz")
											r2 := b.FAdd(b.FAdd(b.FMul(dx, dx, "dx2"), b.FMul(dy, dy, "dy2"), "s"),
												b.FMul(dz, dz, "dz2"), "r2")
											r2inv := b.FDiv(ir.F64c(1), r2, "r2inv")
											r6 := b.FMul(b.FMul(r2inv, r2inv, "r4"), r2inv, "r6")
											pot := b.FMul(r6, b.FSub(b.FMul(ir.F64c(lj1), r6, "a"),
												ir.F64c(lj2), "in"), "pot")
											force := b.FMul(r2inv, pot, "force")
											zero := ir.F64c(0)
											fxv := b.Select(same, zero, b.FMul(dx, force, "fx"), "fxs")
											fyv := b.Select(same, zero, b.FMul(dy, force, "fy"), "fys")
											fzv := b.Select(same, zero, b.FMul(dz, force, "fz"), "fzs")
											return []ir.Value{
												b.FAdd(cv[0], fxv, "ax"),
												b.FAdd(cv[1], fyv, "ay"),
												b.FAdd(cv[2], fzv, "az"),
											}
										})
									// Accumulate into the force arrays.
									pfx := b.GEP(gx, "pfx", ip)
									pfy := b.GEP(gy, "pfy", ip)
									pfz := b.GEP(gz, "pfz", ip)
									b.Store(b.FAdd(b.Load(pfx, "ofx"), acc[0], "nfx"), pfx)
									b.Store(b.FAdd(b.Load(pfy, "ofy"), acc[1], "nfy"), pfy)
									b.Store(b.FAdd(b.Load(pfz, "ofz"), acc[2], "nfz"), pfz)
								})
							})
						})
					})
				})
			})
		})
	})
	b.Ret(nil)
	verify(f)

	nCells := blockSide * blockSide * blockSide
	maxPts := nCells * density
	return &Kernel{
		Name: "md-grid",
		M:    m,
		F:    f,
		Setup: func(mem *ir.FlatMem, seed int64) *Instance {
			r := rng(seed)
			counts := make([]int64, nCells)
			X := make([]float64, maxPts)
			Y := make([]float64, maxPts)
			Z := make([]float64, maxPts)
			for c := 0; c < nCells; c++ {
				counts[c] = int64(2 + r.Intn(density-1))
				for p := 0; p < int(counts[c]); p++ {
					X[c*density+p] = r.Float64() * 10
					Y[c*density+p] = r.Float64() * 10
					Z[c*density+p] = r.Float64() * 10
				}
			}
			nA := mem.AllocFor(ir.I64, nCells)
			pxA := mem.AllocFor(ir.F64, maxPts)
			pyA := mem.AllocFor(ir.F64, maxPts)
			pzA := mem.AllocFor(ir.F64, maxPts)
			fxA := mem.AllocFor(ir.F64, maxPts)
			fyA := mem.AllocFor(ir.F64, maxPts)
			fzA := mem.AllocFor(ir.F64, maxPts)
			writeI64s(mem, nA, counts)
			writeF64s(mem, pxA, X)
			writeF64s(mem, pyA, Y)
			writeF64s(mem, pzA, Z)

			wantX := make([]float64, maxPts)
			wantY := make([]float64, maxPts)
			wantZ := make([]float64, maxPts)
			cell := func(x, y, z int) int { return (x*blockSide+y)*blockSide + z }
			for bx := 0; bx < blockSide; bx++ {
				for by := 0; by < blockSide; by++ {
					for bz := 0; bz < blockSide; bz++ {
						home := cell(bx, by, bz)
						for dx := -1; dx <= 1; dx++ {
							for dy := -1; dy <= 1; dy++ {
								for dz := -1; dz <= 1; dz++ {
									tx, ty, tz := bx+dx, by+dy, bz+dz
									if tx < 0 || tx >= blockSide || ty < 0 || ty >= blockSide ||
										tz < 0 || tz >= blockSide {
										continue
									}
									nbr := cell(tx, ty, tz)
									for p := 0; p < int(counts[home]); p++ {
										ip := home*density + p
										var ax, ay, az float64
										for q := 0; q < int(counts[nbr]); q++ {
											iq := nbr*density + q
											if ip == iq {
												continue
											}
											ddx := X[ip] - X[iq]
											ddy := Y[ip] - Y[iq]
											ddz := Z[ip] - Z[iq]
											r2 := ddx*ddx + ddy*ddy + ddz*ddz
											r2inv := 1.0 / r2
											r6 := r2inv * r2inv * r2inv
											pot := r6 * (lj1*r6 - lj2)
											force := r2inv * pot
											ax += ddx * force
											ay += ddy * force
											az += ddz * force
										}
										wantX[ip] += ax
										wantY[ip] += ay
										wantZ[ip] += az
									}
								}
							}
						}
					}
				}
			}
			return &Instance{
				Args:   []uint64{nA, pxA, pyA, pzA, fxA, fyA, fzA},
				Bytes:  (nCells + 6*maxPts) * 8,
				InAddr: nA, InBytes: pzA + uint64(maxPts*8) - nA,
				OutAddr: fxA, OutBytes: uint64(3 * maxPts * 8),
				Check: func(mm *ir.FlatMem) error {
					if err := checkF64(mm, fxA, wantX, "fx"); err != nil {
						return err
					}
					if err := checkF64(mm, fyA, wantY, "fy"); err != nil {
						return err
					}
					return checkF64(mm, fzA, wantZ, "fz")
				},
			}
		},
	}
}
