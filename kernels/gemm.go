package kernels

import (
	"gosalam/ir"
)

// GEMM builds the MachSuite gemm/ncubed kernel: C = A×B over n×n doubles
// with the classic three-loop nest. unroll applies to the inner (k) loop,
// mirroring the paper's ILP tuning knob; n must be divisible by unroll.
func GEMM(n, unroll int) *Kernel {
	if unroll < 1 {
		unroll = 1
	}
	m := ir.NewModule("gemm")
	b := ir.NewBuilder(m)
	f := b.Func("gemm", ir.Void,
		ir.P("a", ir.Ptr(ir.F64)), ir.P("b", ir.Ptr(ir.F64)), ir.P("c", ir.Ptr(ir.F64)))
	a, bp, cp := f.Params[0], f.Params[1], f.Params[2]
	N := ir.I64c(int64(n))

	b.Loop("i", ir.I64c(0), N, 1, func(i ir.Value) {
		rowI := b.Mul(i, N, "rowI")
		b.Loop("j", ir.I64c(0), N, 1, func(j ir.Value) {
			sum := b.LoopCarriedUnrolled("k", ir.I64c(0), N, 1, unroll,
				[]ir.Value{ir.F64c(0)}, func(k ir.Value, cv []ir.Value) []ir.Value {
					av := b.Load(b.GEP(a, "pa", b.Add(rowI, k, "ia")), "va")
					bv := b.Load(b.GEP(bp, "pb", b.Add(b.Mul(k, N, "rowK"), j, "ib")), "vb")
					return []ir.Value{b.FAdd(cv[0], b.FMul(av, bv, "prod"), "sum")}
				})
			b.Store(sum[0], b.GEP(cp, "pc", b.Add(rowI, j, "ic")))
		})
	})
	b.Ret(nil)
	verify(f)

	return &Kernel{
		Name: "gemm",
		M:    m,
		F:    f,
		Setup: func(mem *ir.FlatMem, seed int64) *Instance {
			r := rng(seed)
			A := make([]float64, n*n)
			B := make([]float64, n*n)
			for i := range A {
				A[i] = r.Float64()*2 - 1
				B[i] = r.Float64()*2 - 1
			}
			aAddr := mem.AllocFor(ir.F64, n*n)
			bAddr := mem.AllocFor(ir.F64, n*n)
			cAddr := mem.AllocFor(ir.F64, n*n)
			writeF64s(mem, aAddr, A)
			writeF64s(mem, bAddr, B)

			want := make([]float64, n*n)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					s := 0.0
					for k := 0; k < n; k++ {
						s += A[i*n+k] * B[k*n+j]
					}
					want[i*n+j] = s
				}
			}
			return &Instance{
				Args:   []uint64{aAddr, bAddr, cAddr},
				Bytes:  3 * n * n * 8,
				InAddr: aAddr, InBytes: uint64(2 * n * n * 8),
				OutAddr: cAddr, OutBytes: uint64(n * n * 8),
				Check: func(mm *ir.FlatMem) error {
					return checkF64(mm, cAddr, want, "c")
				},
			}
		},
	}
}

// GEMMUnrolledInner returns GEMM with the inner loop fully unrolled — the
// "N-Cubed (Fully unrolled)" datapath of Table II.
func GEMMUnrolledInner(n int) *Kernel {
	k := GEMM(n, n)
	k.Name = "gemm-unrolled"
	return k
}

// GEMMTree builds GEMM with the inner (k) loop fully unrolled into a
// balanced adder-tree reduction: 2n parallel loads, n multiplies, and a
// log-depth sum per output element. This is the wide, ILP-rich datapath
// the paper's design-space exploration sweeps ports and FP units over
// (Figs. 13-15): its performance is bound by memory bandwidth and FP
// resources rather than a serial accumulation chain. n must be a power of
// two.
func GEMMTree(n int) *Kernel {
	if n&(n-1) != 0 || n < 2 {
		panic("kernels: GEMMTree size must be a power of two >= 2")
	}
	m := ir.NewModule("gemm-tree")
	b := ir.NewBuilder(m)
	f := b.Func("gemm_tree", ir.Void,
		ir.P("a", ir.Ptr(ir.F64)), ir.P("b", ir.Ptr(ir.F64)), ir.P("c", ir.Ptr(ir.F64)))
	a, bp, cp := f.Params[0], f.Params[1], f.Params[2]
	N := ir.I64c(int64(n))

	b.Loop("i", ir.I64c(0), N, 1, func(i ir.Value) {
		rowI := b.Mul(i, N, "rowI")
		b.Loop("j", ir.I64c(0), N, 1, func(j ir.Value) {
			prods := make([]ir.Value, n)
			for k := 0; k < n; k++ {
				kc := ir.I64c(int64(k))
				av := b.Load(b.GEP(a, "pa", b.Add(rowI, kc, "ia")), "va")
				bv := b.Load(b.GEP(bp, "pb", b.Add(ir.I64c(int64(k*n)), j, "ib")), "vb")
				prods[k] = b.FMul(av, bv, "prod")
			}
			for len(prods) > 1 {
				next := make([]ir.Value, 0, len(prods)/2)
				for k := 0; k+1 < len(prods); k += 2 {
					next = append(next, b.FAdd(prods[k], prods[k+1], "t"))
				}
				prods = next
			}
			b.Store(prods[0], b.GEP(cp, "pc", b.Add(rowI, j, "ic")))
		})
	})
	b.Ret(nil)
	verify(f)

	base := GEMM(n, 1) // reuse the workload generator and golden
	return &Kernel{
		Name:  "gemm-tree",
		M:     m,
		F:     f,
		Setup: base.Setup,
	}
}
