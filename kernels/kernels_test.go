package kernels

import (
	"testing"

	"gosalam/ir"
)

// runKernel executes a kernel functionally and checks the golden.
func runKernel(t *testing.T, k *Kernel, seed int64) ir.ExecStats {
	t.Helper()
	mem := ir.NewFlatMem(0, 1<<24)
	inst := k.Setup(mem, seed)
	_, stats, err := ir.Exec(k.F, inst.Args, mem, nil)
	if err != nil {
		t.Fatalf("%s: exec: %v", k.Name, err)
	}
	if err := inst.Check(mem); err != nil {
		t.Fatalf("%s: golden mismatch: %v", k.Name, err)
	}
	return stats
}

func TestAllKernelsSmallPreset(t *testing.T) {
	for _, k := range All(Small) {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			stats := runKernel(t, k, 1)
			if stats.Steps == 0 {
				t.Fatal("kernel executed no instructions")
			}
			if stats.MemReads == 0 || stats.MemWrites == 0 {
				t.Fatalf("no memory traffic: r=%d w=%d", stats.MemReads, stats.MemWrites)
			}
		})
	}
}

func TestAllKernelsMultipleSeeds(t *testing.T) {
	for _, k := range All(Small) {
		for seed := int64(2); seed <= 4; seed++ {
			runKernel(t, k, seed)
		}
	}
}

func TestByName(t *testing.T) {
	if ByName(Small, "gemm") == nil {
		t.Fatal("gemm missing")
	}
	if ByName(Small, "nope") != nil {
		t.Fatal("found nonexistent kernel")
	}
	names := map[string]bool{}
	for _, k := range All(Default) {
		if names[k.Name] {
			t.Fatalf("duplicate kernel name %s", k.Name)
		}
		names[k.Name] = true
	}
	if len(names) != 9 {
		t.Fatalf("expected 9 MachSuite kernels, got %d", len(names))
	}
}

func TestGEMMUnrollEquivalence(t *testing.T) {
	// Unrolled GEMM computes the same product.
	for _, unroll := range []int{1, 2, 4, 8} {
		k := GEMM(8, unroll)
		runKernel(t, k, 7)
	}
	// Fully unrolled variant.
	runKernel(t, GEMMUnrolledInner(8), 7)
}

func TestSPMVCondShiftDatasets(t *testing.T) {
	k := SPMVCondShift(32, 4)
	// Even seed: no triggering values; odd seed: triggering values. Both
	// must pass their goldens.
	runKernel(t, k, 2)
	runKernel(t, k, 3)

	// The shift must actually execute for the odd dataset and not for the
	// even one — the Table I probe.
	countShifts := func(seed int64) int {
		mem := ir.NewFlatMem(0, 1<<22)
		inst := k.Setup(mem, seed)
		shifts := 0
		_, _, err := ir.Exec(k.F, inst.Args, mem, &ir.ExecOpts{
			Trace: func(ev ir.TraceEvent) {
				if ev.I.Op == ir.OpShl {
					shifts++
				}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return shifts
	}
	if n := countShifts(2); n != 0 {
		t.Fatalf("even dataset executed %d shifts, want 0", n)
	}
	if n := countShifts(3); n == 0 {
		t.Fatal("odd dataset executed no shifts")
	}
}

func TestBFSLevelsReachable(t *testing.T) {
	k := BFS(64, 4)
	mem := ir.NewFlatMem(0, 1<<22)
	inst := k.Setup(mem, 1)
	if _, _, err := ir.Exec(k.F, inst.Args, mem, nil); err != nil {
		t.Fatal(err)
	}
	if err := inst.Check(mem); err != nil {
		t.Fatal(err)
	}
	// The spanning-tree construction keeps every node reachable.
	lvA := inst.Args[3]
	for i := 0; i < 64; i++ {
		if lv := mem.ReadI64(lvA + uint64(i*8)); lv >= 127 {
			t.Fatalf("node %d unreached (level %d)", i, lv)
		}
	}
}

func TestCNNKernels(t *testing.T) {
	runKernel(t, Conv2D(12, 12), 5)
	runKernel(t, ReLU(100), 5)
	runKernel(t, MaxPool(10, 10), 5)
}

func TestCNNPipelineComposition(t *testing.T) {
	// conv -> relu -> pool goldens compose: feeding conv output through
	// relu and pool goldens matches an end-to-end manual computation.
	h, w := 10, 10
	r := rng(11)
	img := make([]float64, h*w)
	for i := range img {
		img[i] = r.Float64()*2 - 1
	}
	weights := []float64{1, 0, -1, 2, 0, -2, 1, 0, -1}
	conv := ConvGolden(img, weights, h, w)
	rel := ReLUGolden(conv)
	pool := MaxPoolGolden(rel, h-2, w-2)
	if len(pool) != ((h-2)/2)*((w-2)/2) {
		t.Fatalf("pool size %d", len(pool))
	}
	// Spot-check positivity: relu output is nonnegative, so pooled too.
	for i, v := range pool {
		if v < 0 {
			t.Fatalf("pool[%d] = %g < 0", i, v)
		}
	}
}

func TestInstanceMetadata(t *testing.T) {
	for _, k := range All(Small) {
		mem := ir.NewFlatMem(0, 1<<24)
		inst := k.Setup(mem, 1)
		if inst.Bytes <= 0 {
			t.Fatalf("%s: bytes = %d", k.Name, inst.Bytes)
		}
		if inst.InBytes == 0 || inst.OutBytes == 0 {
			t.Fatalf("%s: missing in/out ranges", k.Name)
		}
		if !mem.Contains(inst.InAddr, int(inst.InBytes)) ||
			!mem.Contains(inst.OutAddr, int(inst.OutBytes)) {
			t.Fatalf("%s: in/out ranges outside memory", k.Name)
		}
	}
}

func TestKernelsPrintable(t *testing.T) {
	// Every kernel's module prints and reparses (round trip through the
	// textual IR) and still verifies.
	for _, k := range All(Small) {
		text := ir.Print(k.M)
		m2, err := ir.Parse(k.Name, text)
		if err != nil {
			t.Fatalf("%s: reparse: %v", k.Name, err)
		}
		f2 := m2.Func(k.F.Name())
		if f2 == nil {
			t.Fatalf("%s: function lost", k.Name)
		}
		if err := ir.Verify(f2); err != nil {
			t.Fatalf("%s: reverify: %v", k.Name, err)
		}
	}
}

func TestMaxPoolStreamMatchesMaxPool(t *testing.T) {
	runKernel(t, MaxPoolStream(8, 8), 9)
	// Loads from `in` must be strictly sequential — the stream contract.
	k := MaxPoolStream(8, 8)
	mem := ir.NewFlatMem(0, 1<<20)
	inst := k.Setup(mem, 9)
	inBase := inst.Args[0]
	var last int64 = -1
	ok := true
	_, _, err := ir.Exec(k.F, inst.Args, mem, &ir.ExecOpts{
		Trace: func(ev ir.TraceEvent) {
			if ev.I.Op == ir.OpLoad && ev.Addr >= inBase && ev.Addr < inBase+inst.InBytes {
				idx := int64(ev.Addr-inBase) / 8
				if idx != last+1 {
					ok = false
				}
				last = idx
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("stream-pool input loads are not sequential")
	}
	if last != 63 {
		t.Fatalf("consumed %d inputs, want 64", last+1)
	}
}

func TestGEMMTree(t *testing.T) {
	runKernel(t, GEMMTree(8), 7)
	// The tree kernel has n fmuls and n-1 fadds per output, all in one
	// block: wide ILP.
	k := GEMMTree(8)
	fmuls := 0
	for _, blk := range k.F.Blocks {
		for _, in := range blk.Instrs {
			if in.Op == ir.OpFMul {
				fmuls++
			}
		}
	}
	if fmuls != 8 {
		t.Fatalf("static fmuls = %d, want 8", fmuls)
	}
}

func TestExtrasRunAndResolve(t *testing.T) {
	for _, k := range Extras(Small) {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			runKernel(t, k, 3)
			if ByName(Small, k.Name) == nil {
				t.Fatalf("%s not resolvable by name", k.Name)
			}
		})
	}
}

func TestMicroPresetRunsAndResolves(t *testing.T) {
	// Every Micro kernel executes, passes its golden, and carries the same
	// name as its Small sibling so ProxyOf can pair them.
	for _, k := range append(All(Micro), Extras(Micro)...) {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			stats := runKernel(t, k, 1)
			if stats.Steps == 0 {
				t.Fatal("micro kernel executed no instructions")
			}
			if ByName(Small, k.Name) == nil {
				t.Fatalf("%s has no Small sibling", k.Name)
			}
			if ProxyOf(k.Name) != nil && ProxyOf(k.Name).Name != k.Name {
				t.Fatalf("ProxyOf(%s) resolves to %s", k.Name, ProxyOf(k.Name).Name)
			}
		})
	}
	if ProxyOf("no-such-kernel") != nil {
		t.Fatal("ProxyOf invented a kernel")
	}
}

func TestLargePresetConstructsAndResolves(t *testing.T) {
	// Large is the sampled-simulation tier: running every instance in a
	// unit test would take minutes, so this checks construction (IR
	// verifies at build), name parity with the Small tier, and that the
	// sizes genuinely grew.
	large := append(All(Large), Extras(Large)...)
	if len(large) != len(All(Small))+len(Extras(Small)) {
		t.Fatalf("Large has %d kernels, Small tier has %d", len(large), len(All(Small))+len(Extras(Small)))
	}
	for _, k := range large {
		if ByName(Small, k.Name) == nil {
			t.Errorf("%s has no Small sibling", k.Name)
		}
		if ByName(Large, k.Name) == nil {
			t.Errorf("%s not resolvable in the Large preset", k.Name)
		}
	}
}

func TestBFSQueueMatchesBulk(t *testing.T) {
	// The worklist and bulk variants must label every node identically
	// (same graph, same seed).
	qk := BFSQueue(64, 4)
	runKernel(t, qk, 1)
	bk := BFS(64, 4)

	memQ := ir.NewFlatMem(0, 1<<22)
	instQ := qk.Setup(memQ, 5)
	if _, _, err := ir.Exec(qk.F, instQ.Args, memQ, nil); err != nil {
		t.Fatal(err)
	}
	memB := ir.NewFlatMem(0, 1<<22)
	instB := bk.Setup(memB, 5)
	if _, _, err := ir.Exec(bk.F, instB.Args, memB, nil); err != nil {
		t.Fatal(err)
	}
	lvQ, lvB := instQ.Args[3], instB.Args[3]
	for i := 0; i < 64; i++ {
		a := memQ.ReadI64(lvQ + uint64(i*8))
		c := memB.ReadI64(lvB + uint64(i*8))
		if a != c {
			t.Fatalf("node %d: queue level %d != bulk level %d", i, a, c)
		}
	}
}
