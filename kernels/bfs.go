package kernels

import (
	"gosalam/ir"
)

// BFSQueue builds the MachSuite bfs/queue kernel: worklist breadth-first
// search with an explicit FIFO of frontier nodes. Unlike the bulk variant,
// the outer loop is a true data-dependent while (head < tail) whose trip
// count is unknowable statically — built here with raw blocks and phis,
// since no counted-loop helper fits. This is the strongest irregular-
// control stress for the runtime engine.
func BFSQueue(nNodes, avgDeg int) *Kernel {
	const maxLevel = int64(127)
	m := ir.NewModule("bfs-queue")
	b := ir.NewBuilder(m)
	f := b.Func("bfs_queue", ir.Void,
		ir.P("nodesBegin", ir.Ptr(ir.I64)), ir.P("nodesEnd", ir.Ptr(ir.I64)),
		ir.P("edges", ir.Ptr(ir.I64)), ir.P("level", ir.Ptr(ir.I64)),
		ir.P("queue", ir.Ptr(ir.I64)))
	nb, ne, ed, lv, qu := f.Params[0], f.Params[1], f.Params[2], f.Params[3], f.Params[4]

	// while (head < tail) { ... }
	entry := b.B
	whead := b.Block("while.head")
	wbody := b.Block("while.body")
	wexit := b.Block("while.exit")
	b.Br(whead)

	b.SetBlock(whead)
	headPhi := b.Phi(ir.I64, "head")
	tailPhi := b.Phi(ir.I64, "tail")
	ir.AddIncoming(headPhi, ir.I64c(0), entry)
	ir.AddIncoming(tailPhi, ir.I64c(1), entry) // node 0 pre-enqueued
	cond := b.ICmp(ir.ISLT, headPhi, tailPhi, "more")
	b.CondBr(cond, wbody, wexit)

	b.SetBlock(wbody)
	n := b.Load(b.GEP(qu, "pq", headPhi), "n")
	ln := b.Load(b.GEP(lv, "pln", n), "ln")
	nl := b.Add(ln, ir.I64c(1), "nl")
	begin := b.Load(b.GEP(nb, "pb", n), "begin")
	end := b.Load(b.GEP(ne, "pe", n), "end")
	tailOut := b.LoopCarried("e", begin, end, 1, []ir.Value{tailPhi},
		func(e ir.Value, cv []ir.Value) []ir.Value {
			d := b.Load(b.GEP(ed, "pd", e), "d")
			pl := b.GEP(lv, "pdl", d)
			dl := b.Load(pl, "dl")
			unseen := b.ICmp(ir.IEQ, dl, ir.I64c(maxLevel), "unseen")
			newTail := b.IfValue(unseen, "push", func() ir.Value {
				b.Store(nl, pl)
				b.Store(d, b.GEP(qu, "pt", cv[0]))
				return b.Add(cv[0], ir.I64c(1), "tinc")
			}, func() ir.Value { return cv[0] })
			return []ir.Value{newTail}
		})
	head1 := b.Add(headPhi, ir.I64c(1), "head1")
	latch := b.B
	b.Br(whead)
	ir.AddIncoming(headPhi, head1, latch)
	ir.AddIncoming(tailPhi, tailOut[0], latch)

	b.SetBlock(wexit)
	b.Ret(nil)
	verify(f)

	return &Kernel{
		Name: "bfs-queue",
		M:    m,
		F:    f,
		Setup: func(mem *ir.FlatMem, seed int64) *Instance {
			begin, end, edges := csrGraph(nNodes, avgDeg, seed)
			levels := make([]int64, nNodes)
			for i := range levels {
				levels[i] = maxLevel
			}
			levels[0] = 0

			nbA := mem.AllocFor(ir.I64, nNodes)
			neA := mem.AllocFor(ir.I64, nNodes)
			edA := mem.AllocFor(ir.I64, len(edges))
			lvA := mem.AllocFor(ir.I64, nNodes)
			quA := mem.AllocFor(ir.I64, nNodes+1)
			writeI64s(mem, nbA, begin)
			writeI64s(mem, neA, end)
			writeI64s(mem, edA, edges)
			writeI64s(mem, lvA, levels)
			mem.WriteI64(quA, 0) // frontier starts at node 0

			// Golden worklist BFS.
			want := append([]int64(nil), levels...)
			queue := []int64{0}
			for head := 0; head < len(queue); head++ {
				nd := queue[head]
				for e := begin[nd]; e < end[nd]; e++ {
					d := edges[e]
					if want[d] == maxLevel {
						want[d] = want[nd] + 1
						queue = append(queue, d)
					}
				}
			}
			return &Instance{
				Args:   []uint64{nbA, neA, edA, lvA, quA},
				Bytes:  (4*nNodes + len(edges) + 1) * 8,
				InAddr: nbA, InBytes: lvA + uint64(nNodes*8) - nbA,
				OutAddr: lvA, OutBytes: uint64(nNodes * 8),
				Check: func(mm *ir.FlatMem) error {
					return checkI64(mm, lvA, want, "level")
				},
			}
		},
	}
}

// csrGraph builds a random mostly-connected directed graph in CSR form.
func csrGraph(nNodes, avgDeg int, seed int64) (begin, end, edges []int64) {
	r := rng(seed)
	adj := make([][]int64, nNodes)
	for i := 1; i < nNodes; i++ {
		p := r.Intn(i) // spanning edge keeps nodes reachable
		adj[p] = append(adj[p], int64(i))
	}
	for e := 0; e < nNodes*(avgDeg-1); e++ {
		u, v := r.Intn(nNodes), r.Intn(nNodes)
		adj[u] = append(adj[u], int64(v))
	}
	begin = make([]int64, nNodes)
	end = make([]int64, nNodes)
	for i := 0; i < nNodes; i++ {
		begin[i] = int64(len(edges))
		edges = append(edges, adj[i]...)
		end[i] = int64(len(edges))
	}
	return begin, end, edges
}

// BFS builds the MachSuite bfs/bulk kernel: breadth-first search over a
// CSR graph, sweeping horizons. Control flow is thoroughly data-dependent
// (whether a node joins a horizon depends on graph structure), which is
// what breaks trace-based datapath reconstruction — BFS is the paper's
// headline irregular benchmark in Table IV.
func BFS(nNodes, avgDeg int) *Kernel {
	const maxLevel = int64(127)
	m := ir.NewModule("bfs")
	b := ir.NewBuilder(m)
	f := b.Func("bfs", ir.Void,
		ir.P("nodesBegin", ir.Ptr(ir.I64)), ir.P("nodesEnd", ir.Ptr(ir.I64)),
		ir.P("edges", ir.Ptr(ir.I64)), ir.P("level", ir.Ptr(ir.I64)),
		ir.P("levelCounts", ir.Ptr(ir.I64)))
	nb, ne, ed, lv, lc := f.Params[0], f.Params[1], f.Params[2], f.Params[3], f.Params[4]
	N := ir.I64c(int64(nNodes))

	maxHorizon := ir.I64c(int64(nNodes)) // worst-case diameter
	b.Loop("h", ir.I64c(0), maxHorizon, 1, func(h ir.Value) {
		cnt := b.LoopCarried("n", ir.I64c(0), N, 1, []ir.Value{ir.I64c(0)},
			func(n ir.Value, cv []ir.Value) []ir.Value {
				lvN := b.Load(b.GEP(lv, "plv", n), "lvN")
				onHorizon := b.ICmp(ir.IEQ, lvN, h, "onH")
				newCnt := b.IfValue(onHorizon, "visit", func() ir.Value {
					begin := b.Load(b.GEP(nb, "pb", n), "begin")
					end := b.Load(b.GEP(ne, "pe", n), "end")
					found := b.LoopCarried("e", begin, end, 1, []ir.Value{ir.I64c(0)},
						func(e ir.Value, cw []ir.Value) []ir.Value {
							dst := b.Load(b.GEP(ed, "pd", e), "dst")
							pl := b.GEP(lv, "pdl", dst)
							dl := b.Load(pl, "dl")
							unseen := b.ICmp(ir.IEQ, dl, ir.I64c(maxLevel), "unseen")
							nf := b.IfValue(unseen, "mark", func() ir.Value {
								b.Store(b.Add(h, ir.I64c(1), "h1"), pl)
								return b.Add(cw[0], ir.I64c(1), "inc")
							}, func() ir.Value { return cw[0] })
							return []ir.Value{nf}
						})
					return b.Add(cv[0], found[0], "acc")
				}, func() ir.Value { return cv[0] })
				return []ir.Value{newCnt}
			})
		b.Store(cnt[0], b.GEP(lc, "pc", h))
	})
	b.Ret(nil)
	verify(f)

	return &Kernel{
		Name: "bfs",
		M:    m,
		F:    f,
		Setup: func(mem *ir.FlatMem, seed int64) *Instance {
			begin, end, edges := csrGraph(nNodes, avgDeg, seed)
			levels := make([]int64, nNodes)
			for i := range levels {
				levels[i] = maxLevel
			}
			levels[0] = 0

			nbA := mem.AllocFor(ir.I64, nNodes)
			neA := mem.AllocFor(ir.I64, nNodes)
			edA := mem.AllocFor(ir.I64, len(edges))
			lvA := mem.AllocFor(ir.I64, nNodes)
			lcA := mem.AllocFor(ir.I64, nNodes)
			writeI64s(mem, nbA, begin)
			writeI64s(mem, neA, end)
			writeI64s(mem, edA, edges)
			writeI64s(mem, lvA, levels)

			// Golden BFS.
			want := append([]int64(nil), levels...)
			wantCounts := make([]int64, nNodes)
			for h := int64(0); h < int64(nNodes); h++ {
				cnt := int64(0)
				for n := 0; n < nNodes; n++ {
					if want[n] != h {
						continue
					}
					for e := begin[n]; e < end[n]; e++ {
						d := edges[e]
						if want[d] == maxLevel {
							want[d] = h + 1
							cnt++
						}
					}
				}
				wantCounts[h] = cnt
			}
			return &Instance{
				Args:   []uint64{nbA, neA, edA, lvA, lcA},
				Bytes:  (3*nNodes + len(edges) + nNodes) * 8,
				InAddr: nbA, InBytes: lvA + uint64(nNodes*8) - nbA,
				OutAddr: lvA, OutBytes: uint64(2 * nNodes * 8),
				Check: func(mm *ir.FlatMem) error {
					if err := checkI64(mm, lvA, want, "level"); err != nil {
						return err
					}
					return checkI64(mm, lcA, wantCounts, "counts")
				},
			}
		},
	}
}
