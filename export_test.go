package salam

import "gosalam/kernels"

// Test-only accessors for session poisoning and pool internals.

// SetTestHookReconfigure installs a hook that runs inside begin between
// the warm rewind and Reconfigure, so tests can simulate a panic while the
// session's dynamic state is mid-rewrite.
func (s *Session) SetTestHookReconfigure(fn func()) { s.testHookReconfigure = fn }

// IsBroken exposes the poisoning flag.
func (s *Session) IsBroken() bool { return s.broken }

// ReleaseForTest returns a session to the pool through the real release
// path (including its broken-session guard).
func (p *SessionPool) ReleaseForTest(s *Session) { p.release(s) }

// AcquireForTest pulls a session from the pool through the real acquire
// path.
func (p *SessionPool) AcquireForTest(k *kernels.Kernel, opts RunOpts) (*Session, error) {
	return p.acquire(k, opts)
}

// IdleForTest counts pooled idle sessions.
func (p *SessionPool) IdleForTest() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, ss := range p.idle {
		n += len(ss)
	}
	return n
}
