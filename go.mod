module gosalam

go 1.22
