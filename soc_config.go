package salam

// Declarative configuration entry points: the bridge from internal/soccfg
// documents to live simulations. Version-0 (flat) configs resolve to a
// kernel plus RunOpts and run on the single-accelerator RunKernel path —
// byte-identical to a Go-constructed run with the same options. Version-1
// (topology) configs build a full SoC: shared SPMs, clusters, DMAs,
// stream links, an LLC — every shape system.go can construct by hand.

import (
	"fmt"
	"os"
	"path/filepath"

	"gosalam/internal/core"
	"gosalam/internal/hw"
	"gosalam/internal/mem"
	"gosalam/internal/soccfg"
	"gosalam/ir"
	"gosalam/kernels"
)

// kernelFor resolves a KernelRef: a built-in kernel at a preset, a
// built-in family at an explicit size, or an external .ll file bound to a
// built-in workload.
func kernelFor(c *soccfg.Config, ref *soccfg.KernelRef) (*kernels.Kernel, error) {
	preset, ok := kernels.Default, true
	switch ref.Preset {
	case "", "default":
	case "small":
		preset = kernels.Small
	case "micro":
		preset = kernels.Micro
	case "large":
		preset = kernels.Large
	default:
		ok = false
	}
	if !ok {
		return nil, fmt.Errorf("config: unknown preset %q", ref.Preset)
	}
	switch {
	case ref.IRFile != "":
		path := c.ResolveIRPath(ref)
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("config: ir_file: %w", err)
		}
		wk := kernels.ByName(preset, ref.Workload)
		if wk == nil {
			return nil, fmt.Errorf("config: workload: unknown kernel %q", ref.Workload)
		}
		m, err := ir.Parse(filepath.Base(path), string(src))
		if err != nil {
			return nil, err
		}
		entry := ref.Entry
		if entry == "" {
			entry = ref.Workload
		}
		return kernels.FromIR("ll/"+ref.Workload, m, entry, wk)
	case len(ref.Size) > 0:
		return kernels.Construct(ref.Kernel, ref.Size)
	default:
		k := kernels.ByName(preset, ref.Kernel)
		if k == nil {
			return nil, fmt.Errorf("config: unknown kernel %q", ref.Kernel)
		}
		return k, nil
	}
}

// applyDevice overlays the config's device knobs on an AccelConfig.
func applyDevice(d *soccfg.DeviceCfg, cfg *AccelConfig) error {
	if d.ClockMHz > 0 {
		cfg.ClockMHz = d.ClockMHz
	}
	if d.ReadPorts > 0 {
		cfg.ReadPorts = d.ReadPorts
	}
	if d.WritePorts > 0 {
		cfg.WritePorts = d.WritePorts
	}
	if d.MaxOutstanding > 0 {
		cfg.MaxOutstanding = d.MaxOutstanding
	}
	if d.ResQueue > 0 {
		cfg.ResQueueSize = d.ResQueue
	}
	if d.PipelineLoops != nil {
		cfg.PipelineLoops = *d.PipelineLoops
	}
	if len(d.FULimits) > 0 {
		cfg.FULimits = map[hw.FUClass]int{}
		for name, n := range d.FULimits {
			cls := hw.FUClassByName(name)
			if cls == hw.FUNone {
				return fmt.Errorf("config: fu_limits: unknown FU class %q", name)
			}
			cfg.FULimits[cls] = n
		}
	}
	return nil
}

// KernelFromConfig resolves a flat (version-0) config into a kernel and
// run options for RunKernel — the config-file equivalent of building
// RunOpts in Go, guaranteed to produce the same simulation byte for byte.
func KernelFromConfig(c *soccfg.Config) (*kernels.Kernel, RunOpts, error) {
	if c.Version != 0 {
		return nil, RunOpts{}, fmt.Errorf("config: version %d topology configs build with BuildFromConfig", c.Version)
	}
	if err := c.Validate(); err != nil {
		return nil, RunOpts{}, err
	}
	k, err := kernelFor(c, &c.KernelRef)
	if err != nil {
		return nil, RunOpts{}, err
	}
	opts := DefaultRunOpts()
	if c.Seed != 0 {
		opts.Seed = c.Seed
	}
	if err := applyDevice(&c.DeviceCfg, &opts.Accel); err != nil {
		return nil, RunOpts{}, err
	}
	switch c.Memory {
	case "", "spm":
		opts.Mem = MemSPM
	case "cache":
		opts.Mem = MemCache
	}
	if c.SPMLatency > 0 {
		opts.SPMLatency = c.SPMLatency
	}
	if c.SPMBanks > 0 {
		opts.SPMBanks = c.SPMBanks
	}
	if c.SPMPorts > 0 {
		opts.SPMPortsPer = c.SPMPorts
	}
	if c.CacheBytes > 0 {
		opts.CacheBytes = c.CacheBytes
	}
	if c.CacheLine > 0 {
		opts.CacheLine = c.CacheLine
	}
	if c.CacheAssoc > 0 {
		opts.CacheAssoc = c.CacheAssoc
	}
	if c.CacheMSHRs > 0 {
		opts.CacheMSHRs = c.CacheMSHRs
	}
	return k, opts, nil
}

// ConfiguredSoC is a live SoC built from a version-1 config, with every
// named component reachable for driver programs and workload setup.
type ConfiguredSoC struct {
	SoC *SoC
	// Kernels maps accelerator name to its resolved kernel (for Setup
	// and golden checks).
	Kernels map[string]*kernels.Kernel
	// Accels maps accelerator name (the config name, without cluster
	// prefixes) to its node.
	Accels map[string]*AccelNode
	// Order lists accelerator names in config order.
	Order []string
	// Clusters, SPMs, DMAs index the other named components.
	Clusters map[string]*Cluster
	SPMs     map[string]*mem.Scratchpad
	DMAs     map[string]*mem.BlockDMA
	// DMAIRQs maps DMA name to its interrupt line.
	DMAIRQs map[string]int
	// StreamOut/StreamIn map stream name to the producer-side and
	// consumer-side window base addresses.
	StreamOut map[string]uint64
	StreamIn  map[string]uint64
}

// BuildFromConfig constructs the SoC a version-1 config describes.
// Construction order is the document order (SPMs, clusters, accelerators,
// DMAs, streams, LLC), so MMR bases and IRQ lines — and therefore the
// whole event schedule — are deterministic functions of the config: the
// same document always builds a byte-identical system.
func BuildFromConfig(c *soccfg.Config) (*ConfiguredSoC, error) {
	if c.Version != 1 {
		return nil, fmt.Errorf("config: version %d flat configs run with KernelFromConfig", c.Version)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	s := c.SoC
	dram := s.DRAMMB
	if dram == 0 {
		dram = 16
	}
	soc := NewSoCXbar(dram, s.XbarWidth)
	out := &ConfiguredSoC{
		SoC:       soc,
		Kernels:   map[string]*kernels.Kernel{},
		Accels:    map[string]*AccelNode{},
		Clusters:  map[string]*Cluster{},
		SPMs:      map[string]*mem.Scratchpad{},
		DMAs:      map[string]*mem.BlockDMA{},
		DMAIRQs:   map[string]int{},
		StreamOut: map[string]uint64{},
		StreamIn:  map[string]uint64{},
	}

	def := func(v, d int) int {
		if v > 0 {
			return v
		}
		return d
	}
	for _, m := range s.SPMs {
		out.SPMs[m.Name] = soc.AddSPM(m.Name, m.Bytes,
			def(m.Latency, 2), def(m.Banks, 4), def(m.Ports, 4))
	}
	for _, cl := range s.Clusters {
		out.Clusters[cl.Name] = soc.NewCluster(cl.Name, ClusterOpts{
			SharedSPMBytes: cl.SharedSPMBytes,
			SPMLatency:     cl.SPMLatency,
			SPMBanks:       cl.SPMBanks,
			SPMPorts:       cl.SPMPorts,
			XbarWidth:      cl.XbarWidth,
		})
	}
	for _, a := range s.Accels {
		k, err := kernelFor(c, &a.KernelRef)
		if err != nil {
			return nil, fmt.Errorf("accelerator %s: %w", a.Name, err)
		}
		cfg := core.DefaultConfig()
		if err := applyDevice(&a.DeviceCfg, &cfg); err != nil {
			return nil, fmt.Errorf("accelerator %s: %w", a.Name, err)
		}
		opts := AccelOpts{
			Cfg:        cfg,
			SPMBytes:   a.SPMBytes,
			SPMLatency: a.SPMLatency,
			SPMBanks:   a.SPMBanks,
			SPMPorts:   a.SPMPorts,
			Global:     a.Global,
		}
		switch {
		case a.SharedSPM == "":
		case a.SharedSPM == "cluster":
			cl := out.Clusters[a.Cluster]
			if cl.SharedSPM == nil {
				return nil, fmt.Errorf("accelerator %s: cluster %s has no shared SPM", a.Name, a.Cluster)
			}
			opts.SharedSPM = cl.SharedSPM
		default:
			opts.SharedSPM = out.SPMs[a.SharedSPM]
		}
		var node *AccelNode
		if a.Cluster != "" {
			node, err = out.Clusters[a.Cluster].AddAccel(a.Name, AccelBuild{F: k.F, Opts: opts})
		} else {
			node, err = soc.AddAccel(a.Name, k.F, opts)
		}
		if err != nil {
			return nil, fmt.Errorf("accelerator %s: %w", a.Name, err)
		}
		out.Kernels[a.Name] = k
		out.Accels[a.Name] = node
		out.Order = append(out.Order, a.Name)
	}
	for _, d := range s.DMAs {
		dma, irq := soc.AddBlockDMA(d.Name)
		out.DMAs[d.Name] = dma
		out.DMAIRQs[d.Name] = irq
	}
	for _, st := range s.Streams {
		outW, inW := soc.StreamLink(st.Name,
			out.Accels[st.Producer], out.Accels[st.Consumer], st.BufferBytes)
		out.StreamOut[st.Name] = outW
		out.StreamIn[st.Name] = inW
	}
	if s.LLC != nil {
		soc.EnableLLC(s.LLC.Bytes, def(s.LLC.Line, 64), def(s.LLC.Assoc, 4))
	}
	return out, nil
}
