package salam

import (
	"fmt"

	"gosalam/internal/core"
	"gosalam/internal/cpu"
	"gosalam/internal/hw"
	"gosalam/internal/mem"
	"gosalam/internal/sim"
	"gosalam/internal/snapshot"
	"gosalam/internal/timeline"
	"gosalam/ir"
)

// Driver-program building blocks, re-exported so SoC users need only this
// package. A driver program is a []DriverOp executed in order by the host.
type (
	// DriverOp is one host driver step.
	DriverOp = cpu.Op
	// WriteReg writes a 64-bit value to a bus address.
	WriteReg = cpu.WriteReg
	// ReadReg reads a 64-bit value from a bus address.
	ReadReg = cpu.ReadReg
	// PollReg polls a register until (value & Mask) == Want.
	PollReg = cpu.PollReg
	// WaitIRQ blocks on an interrupt line.
	WaitIRQ = cpu.WaitIRQ
	// Memcpy copies bytes through the host, word by word.
	Memcpy = cpu.Memcpy
	// HostCompute burns host cycles.
	HostCompute = cpu.Compute
)

// StartAccel builds the driver prologue that programs an accelerator's
// argument MMRs and sets its start (and optionally IRQ-enable) bit.
func StartAccel(mmrBase uint64, args []uint64, irqEnable bool) []DriverOp {
	return cpu.StartAccel(mmrBase, args, irqEnable)
}

// StartDMA builds the driver sequence that programs a block DMA.
func StartDMA(mmrBase uint64, src, dst, n uint64, burst int, irqEnable bool) []DriverOp {
	return cpu.StartDMA(mmrBase, src, dst, n, burst, irqEnable)
}

// SoC is a full system: host CPU, interrupt controller, global crossbar,
// DRAM, and any number of accelerators, DMAs, scratchpads and stream
// links — the Fig. 1 architecture. Components allocate MMR ranges and
// interrupt lines automatically.
type SoC struct {
	Q     *sim.EventQueue
	Space *ir.FlatMem
	Stats *sim.Group

	SysClk *sim.ClockDomain
	AccClk float64 // accelerator clock MHz default

	Xbar *mem.Crossbar
	DRAM *mem.DRAM
	GIC  *cpu.GIC
	Host *cpu.Host

	nextMMR uint64
	nextSPM uint64
	spmEnd  uint64
	nextIRQ int
	nextWin uint64

	// tl is the attached timeline recorder (nil = tracing off); attachers
	// rebind every component when it changes, so SetTimeline works whether
	// it is called before or after components are added.
	tl        timeline.Recorder
	attachers []func(timeline.Recorder)
	// resetters rewind per-component dynamic state for SoC.Reset, in
	// registration order (deterministic). Structural wiring is not undone.
	resetters []func()
	// bufs tracks stream buffers already adopted (reset + timeline), so a
	// buffer shared between a link and a DMA registers once.
	bufs []*mem.StreamBuffer
	// snaps lists components with snapshot support, in registration order;
	// SoC.Checkpoint captures them and SoC.Restore replays them.
	snaps []socSnap
}

// socSnap is one snapshot-registered component of an SoC.
type socSnap struct {
	name    string
	capture func() (snapshot.Component, error)
	restore func(*snapshot.Component) error
}

// adoptSnap registers a component's checkpoint/restore pair. Registration
// order is part of the image topology key.
func (s *SoC) adoptSnap(name string, capture func() (snapshot.Component, error), restore func(*snapshot.Component) error) {
	s.snaps = append(s.snaps, socSnap{name: name, capture: capture, restore: restore})
}

// AccelNode bundles one accelerator with its system plumbing.
type AccelNode struct {
	Acc     *core.Accelerator
	Comm    *core.CommInterface
	SPM     *mem.Scratchpad
	MMRBase uint64
	IRQLine int
}

// NewSoC builds a system with dramMB of DRAM plus an 8 MB scratchpad
// arena, a 1.2 GHz host, and a 1 GHz system interconnect.
func NewSoC(dramMB int) *SoC { return NewSoCXbar(dramMB, 8) }

// NewSoCXbar is NewSoC with an explicit global-crossbar width
// (requests per cycle); declarative configs route through this.
func NewSoCXbar(dramMB, xbarWidth int) *SoC {
	dramBytes := uint64(dramMB) << 20
	spmArena := uint64(8) << 20
	s := &SoC{
		Q:      sim.NewEventQueue(),
		Stats:  sim.NewGroup("soc"),
		SysClk: sim.NewClockDomainMHz("sys", 1000),
		AccClk: 100,
	}
	s.Space = ir.NewFlatMem(0, int(dramBytes+spmArena))
	s.nextSPM = dramBytes
	s.spmEnd = dramBytes + spmArena
	s.nextMMR = 0xF0000000
	s.nextWin = 0xE0000000

	if xbarWidth <= 0 {
		xbarWidth = 8
	}
	s.Xbar = mem.NewCrossbar("xbar", s.Q, s.SysClk, 1, xbarWidth, s.Stats)
	s.DRAM = mem.NewDRAM("dram", s.Q, s.SysClk, s.Space,
		mem.AddrRange{Base: 0, Size: dramBytes}, s.Stats)
	s.Xbar.SetDefault(s.DRAM)
	s.GIC = cpu.NewGIC(s.Stats)
	hostClk := sim.NewClockDomainMHz("host", 1200)
	s.Host = cpu.NewHost("host", s.Q, hostClk, s.Xbar, s.GIC, s.Stats)
	s.adopt(s.Xbar.Reset, s.Xbar.AttachTimeline)
	s.adopt(s.DRAM.Reset, s.DRAM.AttachTimeline)
	s.adoptSnap("dram",
		func() (snapshot.Component, error) {
			st, err := s.DRAM.CaptureState()
			if err != nil {
				return snapshot.Component{}, err
			}
			return snapshot.Component{Name: "dram", DRAM: &st}, nil
		},
		func(c *snapshot.Component) error {
			if c.DRAM == nil {
				return fmt.Errorf("component carries no DRAM state")
			}
			return s.DRAM.RestoreState(*c.DRAM, rejectInflight)
		})
	s.adopt(s.GIC.Reset, nil)
	s.adopt(s.Host.Reset, nil)
	s.adopt(nil, s.Q.AttachTimeline)
	return s
}

// adopt registers a component's per-run reset and timeline hook; either
// may be nil. The attacher fires immediately when a recorder is already
// set, so Add* order relative to SetTimeline does not matter.
func (s *SoC) adopt(reset func(), attach func(timeline.Recorder)) {
	if reset != nil {
		s.resetters = append(s.resetters, reset)
	}
	if attach != nil {
		s.attachers = append(s.attachers, attach)
		if s.tl != nil {
			attach(s.tl)
		}
	}
}

// adoptBuffer registers a stream buffer once, even when it is shared
// between a StreamLink and a stream DMA.
func (s *SoC) adoptBuffer(buf *mem.StreamBuffer) {
	for _, b := range s.bufs {
		if b == buf {
			return
		}
	}
	s.bufs = append(s.bufs, buf)
	s.adopt(buf.Reset, func(rec timeline.Recorder) { buf.AttachTimeline(rec, s.Q) })
}

// SetTimeline attaches a timeline recorder to every component of the SoC
// — event queue, crossbar, DRAM, and all accelerators, scratchpads, DMAs
// and stream buffers added so far or later. A nil recorder detaches.
// Tracing is observer-effect-free: schedules, cycle counts and stats are
// byte-identical with it on or off. Attach a fresh recorder per run; lane
// registration is cumulative, so reusing one across SoC.Reset appends a
// second run to the same trace.
func (s *SoC) SetTimeline(rec timeline.Recorder) {
	s.tl = rec
	for _, attach := range s.attachers {
		attach(rec)
	}
}

// Reset rewinds the SoC for a warm-started run: the event queue, stats,
// backing store, and every registered component return to their cold
// state while structural wiring (topology, address maps, IRQ lines)
// survives. Accelerators are re-armed through Reconfigure with the
// configuration they were added with. After Reset the system replays a
// driver program byte-identically to a freshly built SoC.
func (s *SoC) Reset() {
	s.Q.Reset()
	s.Stats.Reset()
	s.Space.Reset()
	for _, fn := range s.resetters {
		fn()
	}
}

// AllocSPMRange carves an address range from the scratchpad arena.
func (s *SoC) AllocSPMRange(bytes uint64) mem.AddrRange {
	base := (s.nextSPM + 63) &^ 63
	if base+bytes > s.spmEnd {
		panic("salam: scratchpad arena exhausted")
	}
	s.nextSPM = base + bytes
	return mem.AddrRange{Base: base, Size: bytes}
}

// AddSPM creates a scratchpad in the arena, reachable from the crossbar
// (for DMA/host staging) and attachable as accelerator local memory.
func (s *SoC) AddSPM(name string, bytes uint64, latency, banks, ports int) *mem.Scratchpad {
	accClk := sim.NewClockDomainMHz(name+".clk", s.AccClk)
	spm := mem.NewScratchpad(name, s.Q, accClk, s.Space,
		s.AllocSPMRange(bytes), latency, banks, ports, s.Stats)
	s.Xbar.Attach(spm)
	s.adopt(spm.Reset, spm.AttachTimeline)
	s.adoptSnap(name,
		func() (snapshot.Component, error) {
			st, err := spm.CaptureState()
			if err != nil {
				return snapshot.Component{}, err
			}
			return snapshot.Component{Name: name, SPM: &st}, nil
		},
		func(c *snapshot.Component) error {
			if c.SPM == nil {
				return fmt.Errorf("component carries no scratchpad state")
			}
			return spm.RestoreState(*c.SPM, rejectInflight)
		})
	return spm
}

// AddBlockDMA creates a DMA whose MMRs are host-visible and whose
// transfers flow through the global crossbar. The engine is clocked at
// 200 MHz with a 4-byte effective channel (~0.8 GB/s, including descriptor overheads), the regime of a ZCU102
// data mover; adjust BlockDMA.BytesPerCycle to retune.
func (s *SoC) AddBlockDMA(name string) (*mem.BlockDMA, int) {
	dmaClk := sim.NewClockDomainMHz(name+".clk", 200)
	dma := mem.NewBlockDMA(name, s.Q, dmaClk, s.allocMMR(mem.DMANumRegs), s.Xbar, s.Stats)
	dma.BytesPerCycle = 4
	s.Xbar.Attach(dma.MMR)
	line := s.allocIRQ()
	dma.IRQ = s.GIC.Line(line)
	s.adopt(dma.Reset, dma.AttachTimeline)
	return dma, line
}

// AddStreamDMA creates a stream DMA bridging the crossbar and buf.
func (s *SoC) AddStreamDMA(name string, buf *mem.StreamBuffer) (*mem.StreamDMA, int) {
	sd := mem.NewStreamDMA(name, s.Q, s.SysClk, s.Xbar, buf, s.Stats)
	line := s.allocIRQ()
	sd.IRQ = s.GIC.Line(line)
	s.adopt(sd.Reset, sd.AttachTimeline)
	s.adoptBuffer(buf)
	return sd, line
}

// AccelOpts controls AddAccel.
type AccelOpts struct {
	Cfg AccelConfig
	// Profile defaults to Default40nm.
	Profile *hw.Profile
	// SPMBytes creates a private scratchpad of this size (0 = none).
	SPMBytes uint64
	// SharedSPM attaches an existing scratchpad as local memory instead.
	SharedSPM *mem.Scratchpad
	// SPMLatency/Banks/Ports configure the private SPM.
	SPMLatency, SPMBanks, SPMPorts int
	// Global grants a global-crossbar port (for DRAM/cache access).
	Global bool
}

// AddAccel instantiates an accelerator for kernel function f.
func (s *SoC) AddAccel(name string, f *ir.Function, o AccelOpts) (*AccelNode, error) {
	profile := o.Profile
	if profile == nil {
		profile = defaultProfile
	}
	if o.Cfg.ClockMHz == 0 {
		o.Cfg = core.DefaultConfig()
	}
	g, err := core.SharedElab.Elaborate(f, profile, o.Cfg.FULimits)
	if err != nil {
		return nil, err
	}
	mmrBase := s.allocMMR(2 + len(f.Params))
	comm := core.NewCommInterface(name+".comm", s.Q, s.SysClk, mmrBase, len(f.Params), s.Stats)
	s.Xbar.Attach(comm.MMR)

	node := &AccelNode{Comm: comm, MMRBase: mmrBase}
	switch {
	case o.SharedSPM != nil:
		comm.AttachLocal(o.SharedSPM)
		node.SPM = o.SharedSPM
	case o.SPMBytes > 0:
		lat, banks, ports := o.SPMLatency, o.SPMBanks, o.SPMPorts
		if lat <= 0 {
			lat = 2
		}
		if banks <= 0 {
			banks = 4
		}
		if ports <= 0 {
			ports = 2
		}
		node.SPM = s.AddSPM(name+".spm", o.SPMBytes, lat, banks, ports)
		comm.AttachLocal(node.SPM)
	}
	if o.Global || node.SPM == nil {
		comm.AttachGlobal(s.Xbar)
	}

	node.IRQLine = s.allocIRQ()
	comm.IRQ = s.GIC.Line(node.IRQLine)
	node.Acc = core.NewAccelerator(name, s.Q, g, o.Cfg, comm, s.Stats)
	// Reset re-arms the engine with the configuration it was added with:
	// Reconfigure rewinds all engine state against the same shared CDFG
	// (the timeline attachment survives it — same CDFG, same FU lanes).
	cfg := o.Cfg
	s.adopt(func() {
		comm.Reset()
		node.Acc.Reconfigure(g, cfg)
	}, node.Acc.AttachTimeline)
	s.adoptSnap(name,
		func() (snapshot.Component, error) {
			ast, err := node.Acc.CaptureState()
			if err != nil {
				return snapshot.Component{}, err
			}
			cst := comm.CaptureState()
			return snapshot.Component{Name: name, Accel: &ast, Comm: &cst}, nil
		},
		func(c *snapshot.Component) error {
			if c.Accel == nil || c.Comm == nil {
				return fmt.Errorf("component carries no engine state")
			}
			if err := node.Acc.RestoreState(*c.Accel); err != nil {
				return err
			}
			return comm.RestoreState(*c.Comm)
		})
	return node, nil
}

// StreamLink wires producer stores to consumer loads through a bounded
// FIFO — the AXI-Stream-style direct connection of Fig. 16(c). It returns
// the window addresses the two kernels should use as their buffer
// pointers.
func (s *SoC) StreamLink(name string, producer, consumer *AccelNode, bufBytes int) (outWin, inWin uint64) {
	buf := mem.NewStreamBuffer(name, bufBytes, s.Stats)
	s.adoptBuffer(buf)
	out := mem.AddrRange{Base: s.nextWin, Size: 1 << 20}
	s.nextWin += 1 << 20
	in := mem.AddrRange{Base: s.nextWin, Size: 1 << 20}
	s.nextWin += 1 << 20
	producer.Comm.AttachStream(out, buf, core.StreamOut)
	consumer.Comm.AttachStream(in, buf, core.StreamIn)
	return out.Base, in.Base
}

// StreamWindow allocates a window bound to an existing buffer on one
// accelerator (for DMA-fed streams).
func (s *SoC) StreamWindow(node *AccelNode, buf *mem.StreamBuffer, dir core.StreamDir) uint64 {
	w := mem.AddrRange{Base: s.nextWin, Size: 1 << 20}
	s.nextWin += 1 << 20
	node.Comm.AttachStream(w, buf, dir)
	return w.Base
}

func (s *SoC) allocMMR(regs int) uint64 {
	base := s.nextMMR
	s.nextMMR += uint64(regs*8+0xff) &^ 0xff
	return base
}

func (s *SoC) allocIRQ() int {
	n := s.nextIRQ
	s.nextIRQ++
	return n
}

// Run drains the event queue.
func (s *SoC) Run() sim.Tick { return s.Q.Run() }

// RunHost executes a driver program on the host and runs the simulation
// until it completes.
func (s *SoC) RunHost(prog []cpu.Op) (sim.Tick, error) {
	done := false
	s.Host.Run(prog, func() { done = true })
	s.Q.RunWhile(func() bool { return !done })
	if !done {
		return s.Q.Now(), fmt.Errorf("salam: host program did not complete (deadlock?)")
	}
	return s.Q.Now(), nil
}

// Now returns current simulated time.
func (s *SoC) Now() sim.Tick { return s.Q.Now() }

// Stamp returns a driver op that records the current time into *t.
func Stamp(s *SoC, t *sim.Tick) cpu.Op {
	return cpu.Call{Desc: "stamp", Fn: func(h *cpu.Host, done func()) {
		*t = s.Q.Now()
		done()
	}}
}
