package salam_test

// Ingestion gate for real clang-emitted LLVM IR: every fixture under
// testdata/ll (validated against llvm-as-14 when authored) must parse,
// verify, bind to its built-in workload, and simulate with the workload's
// numeric golden check passing. The cycle fingerprints join the golden
// determinism suite under ll/<name> keys.

import (
	"os"
	"path/filepath"
	"testing"

	salam "gosalam"
	"gosalam/ir"
	"gosalam/kernels"
)

// llWorkloads binds each clang-emitted fixture to the built-in kernel
// whose workload (input data + golden check) it implements. Fixture sizes
// are fixed in the C source, so they pair with the Small preset.
var llWorkloads = []struct {
	File     string // under testdata/ll
	Entry    string // function to simulate
	Workload string // built-in kernel supplying Setup/Check
}{
	{"gemm.ll", "gemm", "gemm"},
	{"spmv.ll", "spmv", "spmv"},
	{"relu.ll", "relu", "relu"},
}

// llKernels loads every bound fixture. Used by the golden suite, so load
// failures are fatal: a fixture that stops parsing is a regression.
func llKernels(t *testing.T) []*kernels.Kernel {
	t.Helper()
	out := make([]*kernels.Kernel, 0, len(llWorkloads))
	for _, w := range llWorkloads {
		src, err := os.ReadFile(filepath.Join("testdata", "ll", w.File))
		if err != nil {
			t.Fatal(err)
		}
		m, err := ir.Parse(w.File, string(src))
		if err != nil {
			t.Fatal(err)
		}
		k, err := kernels.FromIR("ll/"+w.Workload, m, w.Entry, kernels.ByName(kernels.Small, w.Workload))
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, k)
	}
	return out
}

// TestLLFixturesSimulate is the ll-smoke gate: each fixture simulates at
// DefaultRunOpts and the borrowed workload Check validates the numeric
// results — proving the clang-shaped IR computes exactly what the
// hand-built kernel does, not merely that it parses.
func TestLLFixturesSimulate(t *testing.T) {
	for _, k := range llKernels(t) {
		res, err := salam.RunKernel(k, salam.DefaultRunOpts())
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		if res.Cycles == 0 {
			t.Fatalf("%s: zero cycles", k.Name)
		}
	}
}

// TestLLFixturesStrayFiles keeps the fixture dir and the workload table in
// sync: an .ll file without a golden binding would silently escape the
// suite.
func TestLLFixturesStrayFiles(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "ll", "*.ll"))
	if err != nil {
		t.Fatal(err)
	}
	bound := map[string]bool{}
	for _, w := range llWorkloads {
		bound[w.File] = true
	}
	for _, p := range paths {
		if !bound[filepath.Base(p)] {
			t.Errorf("%s has no entry in llWorkloads (golden suite will not cover it)", p)
		}
	}
	if len(paths) < 3 {
		t.Fatalf("expected at least 3 clang fixtures, found %d", len(paths))
	}
}
