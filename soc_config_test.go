package salam_test

// Byte-identity gate for the declarative config layer: every shipped
// configs/*.json must build the exact same simulation as the equivalent
// Go-constructed system — same cycles, same total ticks, same fired-event
// count. A config path that silently defaults a knob differently from the
// Go constructors shifts a fingerprint and fails here.

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	salam "gosalam"
	"gosalam/internal/hw"
	"gosalam/internal/soccfg"
	"gosalam/kernels"
)

func goldenEntries(t *testing.T) map[string]goldenPoint {
	t.Helper()
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file: %v", err)
	}
	var m map[string]goldenPoint
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	return m
}

func runFP(t *testing.T, k *kernels.Kernel, opts salam.RunOpts) goldenPoint {
	t.Helper()
	res, err := salam.RunKernel(k, opts)
	if err != nil {
		t.Fatal(err)
	}
	return goldenPoint{Cycles: res.Cycles, Ticks: uint64(res.Ticks), EventsFired: res.EventsFired}
}

// The shipped gemm_spm.json is DefaultRunOpts in JSON: its run must hit
// the committed golden "gemm" entry byte for byte.
func TestConfigGemmSPMMatchesGolden(t *testing.T) {
	c, err := soccfg.Load(filepath.Join("configs", "gemm_spm.json"))
	if err != nil {
		t.Fatal(err)
	}
	k, opts, err := salam.KernelFromConfig(c)
	if err != nil {
		t.Fatal(err)
	}
	got := runFP(t, k, opts)
	want, ok := goldenEntries(t)["gemm"]
	if !ok {
		t.Fatal("golden file has no gemm entry")
	}
	if got != want {
		t.Fatalf("config run diverged from golden: got %+v want %+v", got, want)
	}
}

// The other flat configs carry non-default options; each must match a
// Go-constructed run with the same RunOpts.
func TestConfigFlatMatchesGoBuilt(t *testing.T) {
	t.Run("gemm_cache", func(t *testing.T) {
		c, err := soccfg.Load(filepath.Join("configs", "gemm_cache.json"))
		if err != nil {
			t.Fatal(err)
		}
		k, opts, err := salam.KernelFromConfig(c)
		if err != nil {
			t.Fatal(err)
		}
		got := runFP(t, k, opts)

		ref := salam.DefaultRunOpts()
		ref.Mem = salam.MemCache
		ref.CacheBytes = 4096
		ref.CacheLine = 64
		ref.CacheAssoc = 2
		want := runFP(t, kernels.ByName(kernels.Small, "gemm"), ref)
		if got != want {
			t.Fatalf("config run diverged from Go-built: got %+v want %+v", got, want)
		}
	})
	t.Run("mdknn_fu_limited", func(t *testing.T) {
		c, err := soccfg.Load(filepath.Join("configs", "mdknn_fu_limited.json"))
		if err != nil {
			t.Fatal(err)
		}
		k, opts, err := salam.KernelFromConfig(c)
		if err != nil {
			t.Fatal(err)
		}
		got := runFP(t, k, opts)

		ref := salam.DefaultRunOpts()
		ref.Accel.FULimits = map[hw.FUClass]int{
			hw.FUFPAdder:      2,
			hw.FUFPMultiplier: 2,
			hw.FUFPDivider:    1,
		}
		want := runFP(t, kernels.ByName(kernels.Small, "md-knn"), ref)
		if got != want {
			t.Fatalf("config run diverged from Go-built: got %+v want %+v", got, want)
		}
	})
}

// cnn_cluster.json describes the exact topology clusterGolden constructs
// in Go. Building it with BuildFromConfig and replaying the same driver
// must reproduce the committed "cnn-cluster" fingerprint — MMR bases, IRQ
// lines, and the whole event schedule included.
func TestConfigClusterMatchesGolden(t *testing.T) {
	c, err := soccfg.Load(filepath.Join("configs", "cnn_cluster.json"))
	if err != nil {
		t.Fatal(err)
	}
	built, err := salam.BuildFromConfig(c)
	if err != nil {
		t.Fatal(err)
	}
	soc := built.SoC

	const imgH, imgW = 12, 12
	const convH, convW = imgH - 2, imgW - 2
	img := make([]float64, imgH*imgW)
	for i := range img {
		img[i] = float64((i*31)%13)/6.0 - 1
	}
	weights := []float64{1, 0, -1, 2, 0, -2, 1, 0, -1}
	want := kernels.MaxPoolGolden(
		kernels.ReLUGolden(kernels.ConvGolden(img, weights, imgH, imgW)), convH, convW)

	shared, ok := built.SPMs["shared"]
	if !ok {
		t.Fatal("config did not build the shared SPM")
	}
	conv, relu, pool := built.Accels["conv"], built.Accels["relu"], built.Accels["pool"]
	if conv == nil || relu == nil || pool == nil {
		t.Fatalf("missing accelerators: %v", built.Order)
	}

	base := shared.Range().Base
	imgA, wA := base, base+uint64(len(img)*8)
	convA := wA + 128
	reluA := convA + uint64(convH*convW*8)
	poolA := reluA + uint64(convH*convW*8)
	for i, v := range img {
		soc.Space.WriteF64(imgA+uint64(i*8), v)
	}
	for i, v := range weights {
		soc.Space.WriteF64(wA+uint64(i*8), v)
	}

	var prog []salam.DriverOp
	prog = append(prog, salam.StartAccel(conv.MMRBase, []uint64{imgA, wA, convA}, true)...)
	prog = append(prog, salam.WaitIRQ{Line: conv.IRQLine})
	prog = append(prog, salam.StartAccel(relu.MMRBase, []uint64{convA, reluA}, true)...)
	prog = append(prog, salam.WaitIRQ{Line: relu.IRQLine})
	prog = append(prog, salam.StartAccel(pool.MMRBase, []uint64{reluA, poolA}, true)...)
	prog = append(prog, salam.WaitIRQ{Line: pool.IRQLine})

	end, err := soc.RunHost(prog)
	if err != nil {
		t.Fatal(err)
	}
	soc.Run()
	for i, w := range want {
		got := soc.Space.ReadF64(poolA + uint64(i*8))
		if diff := got - w; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("pool[%d] = %g, want %g", i, got, w)
		}
	}
	got := goldenPoint{
		Cycles:      uint64(end),
		Ticks:       uint64(soc.Q.Now()),
		EventsFired: soc.Q.Fired(),
	}
	wantFP, ok := goldenEntries(t)["cnn-cluster"]
	if !ok {
		t.Fatal("golden file has no cnn-cluster entry")
	}
	if got != wantFP {
		t.Fatalf("config-built SoC diverged from golden: got %+v want %+v", got, wantFP)
	}
}

// streamDriver programs the conv→relu→pool stream pipeline on an
// already-built SoC and returns its schedule fingerprint. Shared between
// the config-built and the Go-built SoC so the comparison is pure
// construction-path vs construction-path.
func streamDriver(t *testing.T, soc *salam.SoC, conv, relu, pool *salam.AccelNode,
	dmaMMRBase uint64, dmaIRQ int, convOutWin, reluInWin, reluOutWin, poolInWin uint64) goldenPoint {
	t.Helper()
	const imgH, imgW = 12, 12
	const convH, convW = imgH - 2, imgW - 2
	img := make([]float64, imgH*imgW)
	for i := range img {
		img[i] = float64((i*31)%13)/6.0 - 1
	}
	weights := []float64{1, 0, -1, 2, 0, -2, 1, 0, -1}
	want := kernels.MaxPoolGolden(
		kernels.ReLUGolden(kernels.ConvGolden(img, weights, imgH, imgW)), convH, convW)

	imgA, wA := uint64(1<<20), uint64(1<<20)+uint64(len(img)*8)
	for i, v := range img {
		soc.Space.WriteF64(imgA+uint64(i*8), v)
	}
	for i, v := range weights {
		soc.Space.WriteF64(wA+uint64(i*8), v)
	}
	imgBytes := uint64(imgH * imgW * 8)
	poolBytes := uint64((convH / 2) * (convW / 2) * 8)

	cb := conv.SPM.Range().Base
	cImg, cW := cb, cb+imgBytes
	pb := pool.SPM.Range().Base
	pLines, pOut := pb, pb+uint64(2*convW*8)+64
	dramOut := uint64(8 << 20)

	var prog []salam.DriverOp
	prog = append(prog, salam.StartDMA(dmaMMRBase, imgA, cImg, imgBytes, 256, true)...)
	prog = append(prog, salam.WaitIRQ{Line: dmaIRQ})
	prog = append(prog, salam.StartDMA(dmaMMRBase, wA, cW, 72, 256, true)...)
	prog = append(prog, salam.WaitIRQ{Line: dmaIRQ})
	prog = append(prog, salam.StartAccel(pool.MMRBase, []uint64{poolInWin, pLines, pOut}, true)...)
	prog = append(prog, salam.StartAccel(relu.MMRBase, []uint64{reluInWin, reluOutWin}, false)...)
	prog = append(prog, salam.StartAccel(conv.MMRBase, []uint64{cImg, cW, convOutWin}, false)...)
	prog = append(prog, salam.WaitIRQ{Line: pool.IRQLine})
	prog = append(prog, salam.StartDMA(dmaMMRBase, pOut, dramOut, poolBytes, 256, true)...)
	prog = append(prog, salam.WaitIRQ{Line: dmaIRQ})

	end, err := soc.RunHost(prog)
	if err != nil {
		t.Fatal(err)
	}
	soc.Run()
	for i, w := range want {
		got := soc.Space.ReadF64(dramOut + uint64(i*8))
		if diff := got - w; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("pool[%d] = %g, want %g", i, got, w)
		}
	}
	return goldenPoint{
		Cycles:      uint64(end),
		Ticks:       uint64(soc.Q.Now()),
		EventsFired: soc.Q.Fired(),
	}
}

// cnn_stream.json describes a DMA-fed, stream-linked pipeline. The
// config-built SoC must be byte-identical to the same topology built by
// hand in Go: same stream windows, same DMA IRQ, same schedule.
func TestConfigStreamMatchesGoBuilt(t *testing.T) {
	c, err := soccfg.Load(filepath.Join("configs", "cnn_stream.json"))
	if err != nil {
		t.Fatal(err)
	}
	built, err := salam.BuildFromConfig(c)
	if err != nil {
		t.Fatal(err)
	}
	got := streamDriver(t, built.SoC,
		built.Accels["conv"], built.Accels["relu"], built.Accels["pool"],
		built.DMAs["dma"].MMR.Range().Base, built.DMAIRQs["dma"],
		built.StreamOut["s1"], built.StreamIn["s1"],
		built.StreamOut["s2"], built.StreamIn["s2"])

	// The same topology, constructed directly against the Go API.
	soc := salam.NewSoC(16)
	accelOpts := func(spmBytes uint64) salam.AccelOpts {
		return salam.AccelOpts{
			Cfg: salam.AccelConfig{
				ClockMHz:       100,
				ReadPorts:      8,
				WritePorts:     4,
				MaxOutstanding: 32,
				ResQueueSize:   256,
				PipelineLoops:  true,
			},
			SPMBytes: spmBytes, SPMBanks: 8, SPMPorts: 8,
		}
	}
	conv, err := soc.AddAccel("conv", kernels.Conv2D(12, 12).F, accelOpts(8192))
	if err != nil {
		t.Fatal(err)
	}
	relu, err := soc.AddAccel("relu", kernels.ReLU(100).F, accelOpts(4096))
	if err != nil {
		t.Fatal(err)
	}
	pool, err := soc.AddAccel("pool", kernels.MaxPoolStream(10, 10).F, accelOpts(8192))
	if err != nil {
		t.Fatal(err)
	}
	dma, dmaIRQ := soc.AddBlockDMA("dma")
	convOutWin, reluInWin := soc.StreamLink("s1", conv, relu, 512)
	reluOutWin, poolInWin := soc.StreamLink("s2", relu, pool, 512)
	want := streamDriver(t, soc, conv, relu, pool,
		dma.MMR.Range().Base, dmaIRQ, convOutWin, reluInWin, reluOutWin, poolInWin)

	if got != want {
		t.Fatalf("config-built SoC diverged from Go-built: got %+v want %+v", got, want)
	}
}

// Every shipped config must parse, validate, and survive an emit
// round-trip (parse → emit → parse → emit is a fixpoint).
func TestShippedConfigsRoundTrip(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("configs", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 5 {
		t.Fatalf("expected at least 5 shipped configs, found %d", len(paths))
	}
	for _, path := range paths {
		t.Run(filepath.Base(path), func(t *testing.T) {
			c, err := soccfg.Load(path)
			if err != nil {
				t.Fatal(err)
			}
			e1, err := c.Emit()
			if err != nil {
				t.Fatal(err)
			}
			c2, err := soccfg.Parse(e1)
			if err != nil {
				t.Fatalf("emitted config does not re-parse: %v\n%s", err, e1)
			}
			e2, err := c2.Emit()
			if err != nil {
				t.Fatal(err)
			}
			if string(e1) != string(e2) {
				t.Fatalf("emit not idempotent for %s", path)
			}
		})
	}
}
