package salam

import (
	"testing"

	"gosalam/internal/sim"
	"gosalam/ir"
	"gosalam/kernels"
)

func TestClusterSharedSPMAndDMA(t *testing.T) {
	soc := NewSoC(16)
	cl := soc.NewCluster("cl0", ClusterOpts{SharedSPMBytes: 64 << 10})
	if cl.SharedSPM == nil || cl.DMA == nil {
		t.Fatal("cluster missing shared resources")
	}

	k := kernels.ReLU(64)
	node, err := cl.AddAccel("relu", AccelBuild{F: k.F, Opts: AccelOpts{SharedSPM: cl.SharedSPM}})
	if err != nil {
		t.Fatal(err)
	}

	// Stage inputs in DRAM, cluster-DMA them into the shared SPM, run the
	// accelerator, DMA back — all through the cluster's own resources.
	vals := make([]float64, 64)
	for i := range vals {
		vals[i] = float64(i%9) - 4
		soc.Space.WriteF64(0x1000+uint64(i*8), vals[i])
	}
	spmIn := cl.SharedSPM.Range().Base
	spmOut := spmIn + 512
	var prog []DriverOp
	prog = append(prog, StartDMA(cl.DMA.MMR.Range().Base, 0x1000, spmIn, 512, 128, true)...)
	prog = append(prog, WaitIRQ{Line: cl.DMAIRQ})
	prog = append(prog, StartAccel(node.MMRBase, []uint64{spmIn, spmOut}, true)...)
	prog = append(prog, WaitIRQ{Line: node.IRQLine})
	prog = append(prog, StartDMA(cl.DMA.MMR.Range().Base, spmOut, 0x2000, 512, 128, true)...)
	prog = append(prog, WaitIRQ{Line: cl.DMAIRQ})
	if _, err := soc.RunHost(prog); err != nil {
		t.Fatal(err)
	}
	soc.Run()

	want := kernels.ReLUGolden(vals)
	for i, w := range want {
		if got := soc.Space.ReadF64(0x2000 + uint64(i*8)); got != w {
			t.Fatalf("out[%d] = %g, want %g", i, got, w)
		}
	}
	// Intra-cluster traffic used the local crossbar.
	if cl.Local.Routed.Value() == 0 {
		t.Fatal("local crossbar never used")
	}
}

// An accelerator in one cluster can program a peer accelerator's MMRs
// directly — inter-accelerator control without the host (the capability
// the paper says trace-based simulators cannot model).
func TestClusterPeerMMRAccess(t *testing.T) {
	soc := NewSoC(16)
	cl := soc.NewCluster("cl0", ClusterOpts{SharedSPMBytes: 32 << 10})

	// Producer kernel: writes results, then pokes the consumer's start
	// MMR through plain stores (ctrl = 1).
	reluK := kernels.ReLU(32)
	consumer, err := cl.AddAccel("cons", AccelBuild{F: reluK.F, Opts: AccelOpts{SharedSPM: cl.SharedSPM}})
	if err != nil {
		t.Fatal(err)
	}

	m := ir.NewModule("prod")
	b := ir.NewBuilder(m)
	f := b.Func("producer", ir.Void,
		ir.P("out", ir.Ptr(ir.F64)), ir.P("peerArg0", ir.Ptr(ir.I64)),
		ir.P("peerArg1", ir.Ptr(ir.I64)), ir.P("peerCtrl", ir.Ptr(ir.I64)),
		ir.P("outAddr", ir.I64), ir.P("resAddr", ir.I64))
	out := f.Params[0]
	b.Loop("i", ir.I64c(0), ir.I64c(32), 1, func(iv ir.Value) {
		v := b.SIToFP(b.Sub(iv, ir.I64c(16), "c"), ir.F64, "vf")
		b.Store(v, b.GEP(out, "po", iv))
	})
	// Program the peer: arg0 = data address, arg1 = result address, go.
	b.Store(f.Params[4], f.Params[1])
	b.Store(f.Params[5], f.Params[2])
	b.Store(ir.I64c(1|2), f.Params[3]) // start + IRQ enable
	b.Ret(nil)

	producer, err := cl.AddAccel("prod", AccelBuild{F: f, Opts: AccelOpts{SharedSPM: cl.SharedSPM}})
	if err != nil {
		t.Fatal(err)
	}

	base := cl.SharedSPM.Range().Base
	dataA, resA := base, base+512
	ctrl := consumer.MMRBase
	arg0 := consumer.MMRBase + 16
	arg1 := consumer.MMRBase + 24

	done := false
	soc.GIC.Wait(consumer.IRQLine, func() { done = true })
	producer.Acc.Start([]uint64{dataA, arg0, arg1, ctrl, dataA, resA})
	soc.Q.RunWhile(func() bool { return !done })
	soc.Run()
	if !done {
		t.Fatal("consumer never started/finished")
	}
	for i := 0; i < 32; i++ {
		want := float64(i - 16)
		if want < 0 {
			want = 0
		}
		if got := soc.Space.ReadF64(resA + uint64(i*8)); got != want {
			t.Fatalf("res[%d] = %g, want %g", i, got, want)
		}
	}
}

// Clusters replicate for parallel execution: N accelerators working on
// disjoint slices should finish in roughly the time of one (the paper's
// scalability argument).
func TestMultiAcceleratorScaling(t *testing.T) {
	run := func(n int) sim.Tick {
		soc := NewSoC(16)
		cl := soc.NewCluster("cl0", ClusterOpts{})
		sliceElems := 256
		k := kernels.ReLU(sliceElems)
		done := 0
		for i := 0; i < n; i++ {
			node, err := cl.AddAccel("relu"+string(rune('0'+i)),
				AccelBuild{F: k.F, Opts: AccelOpts{SPMBytes: 16 << 10}})
			if err != nil {
				t.Fatal(err)
			}
			base := node.SPM.Range().Base
			for e := 0; e < sliceElems; e++ {
				soc.Space.WriteF64(base+uint64(e*8), float64(e%7)-3)
			}
			node.Acc.OnDone = func() { done++ }
			node.Acc.Start([]uint64{base, base + uint64(sliceElems*8)})
		}
		soc.Q.RunWhile(func() bool { return done < n })
		return soc.Q.Now()
	}
	t1 := run(1)
	t8 := run(8)
	if float64(t8) > 1.25*float64(t1) {
		t.Fatalf("8 parallel accelerators (%d ticks) not ~parallel vs 1 (%d ticks)", t8, t1)
	}
}

func TestLLCReducesDRAMTraffic(t *testing.T) {
	// Accelerator reading the same DRAM-resident data repeatedly: with an
	// LLC the rereads hit the cache.
	build := func(llc bool) (reads float64) {
		soc := NewSoC(16)
		if llc {
			soc.EnableLLC(64<<10, 64, 4)
		}
		m := ir.NewModule("r")
		b := ir.NewBuilder(m)
		f := b.Func("reread", ir.F64, ir.P("a", ir.Ptr(ir.F64)))
		sum := b.LoopCarried("rep", ir.I64c(0), ir.I64c(8), 1, []ir.Value{ir.F64c(0)},
			func(_ ir.Value, cr []ir.Value) []ir.Value {
				inner := b.LoopCarried("i", ir.I64c(0), ir.I64c(64), 1, []ir.Value{cr[0]},
					func(iv ir.Value, ci []ir.Value) []ir.Value {
						v := b.Load(b.GEP(f.Params[0], "p", iv), "v")
						return []ir.Value{b.FAdd(ci[0], v, "s")}
					})
				return []ir.Value{inner[0]}
			})
		b.Ret(sum[0])
		node, err := soc.AddAccel("acc", f, AccelOpts{Global: true})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 64; i++ {
			soc.Space.WriteF64(0x1000+uint64(i*8), 1)
		}
		done := false
		node.Acc.OnDone = func() { done = true }
		node.Acc.Start([]uint64{0x1000})
		soc.Q.RunWhile(func() bool { return !done })
		soc.Run()
		if got := ir.FloatFromBits(ir.F64, node.Acc.RetBits()); got != 512 {
			t.Fatalf("sum = %g, want 512", got)
		}
		return soc.DRAM.Reads.Value()
	}
	without := build(false)
	with := build(true)
	if !(with < without/4) {
		t.Fatalf("LLC did not absorb rereads: dram reads %g (LLC) vs %g (none)", with, without)
	}
}

// Two clusters each running a full CNN stage pipeline concurrently, with
// an LLC in front of DRAM: the "accelerator cluster as a replicable
// template" scenario (Sec. III-D2). Both must produce correct, isolated
// results while sharing the memory system.
func TestTwoClustersConcurrentPipelines(t *testing.T) {
	soc := NewSoC(16)
	soc.EnableLLC(64<<10, 64, 4)

	type pipe struct {
		cl              *Cluster
		relu, pool      *AccelNode
		inA, midA, outA uint64
		vals            []float64
	}
	mk := func(name string, seedOff int) *pipe {
		cl := soc.NewCluster(name, ClusterOpts{SharedSPMBytes: 32 << 10})
		relu, err := cl.AddAccel("relu", AccelBuild{
			F: kernels.ReLU(64).F, Opts: AccelOpts{SharedSPM: cl.SharedSPM}})
		if err != nil {
			t.Fatal(err)
		}
		pool, err := cl.AddAccel("pool", AccelBuild{
			F: kernels.MaxPool(8, 8).F, Opts: AccelOpts{SharedSPM: cl.SharedSPM}})
		if err != nil {
			t.Fatal(err)
		}
		base := cl.SharedSPM.Range().Base
		p := &pipe{cl: cl, relu: relu, pool: pool,
			inA: base, midA: base + 512, outA: base + 1024}
		p.vals = make([]float64, 64)
		for i := range p.vals {
			p.vals[i] = float64((i+seedOff)%11) - 5
			soc.Space.WriteF64(p.inA+uint64(i*8), p.vals[i])
		}
		return p
	}
	p1 := mk("cl0", 0)
	p2 := mk("cl1", 3)

	done := 0
	for _, p := range []*pipe{p1, p2} {
		p := p
		p.relu.Acc.OnDone = func() {
			// Chain to the pool stage without the host: simulation-side
			// continuation standing in for a self-synchronizing control op.
			p.pool.Acc.Start([]uint64{p.midA, p.outA})
		}
		p.pool.Acc.OnDone = func() { done++ }
		p.relu.Acc.Start([]uint64{p.inA, p.midA})
	}
	soc.Q.RunWhile(func() bool { return done < 2 })
	soc.Run()
	if done != 2 {
		t.Fatal("pipelines did not finish")
	}
	for i, p := range []*pipe{p1, p2} {
		want := kernels.MaxPoolGolden(kernels.ReLUGolden(p.vals), 8, 8)
		for j, w := range want {
			if got := soc.Space.ReadF64(p.outA + uint64(j*8)); got != w {
				t.Fatalf("cluster %d out[%d] = %g, want %g", i, j, got, w)
			}
		}
	}
}
